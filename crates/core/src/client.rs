//! The client actor: image-based addressing (A1), image adjustment from
//! IAMs (A3), timeout-based failure reporting, and scan orchestration with
//! deterministic termination.

use std::collections::{BTreeMap, HashMap};

use lhrs_lh::ClientImage;
use lhrs_obs::Event as ObsEvent;
use lhrs_sim::{Env, NodeId, TimerId};

use crate::msg::{ClientOp, FilterSpec, Msg, OpId, OpResult, ReqKind};
use crate::registry::SharedHandle;
use crate::{Key, ScanTermination};

/// A stalled request context, kept until the reply (or final failure).
struct Pending {
    kind: ReqKind,
    /// Logical bucket the request was (last) sent to.
    sent_to: u64,
    timer: Option<TimerId>,
    /// Retransmissions attempted so far (bounded by `client_retries`).
    attempts: u32,
    /// Whether the coordinator has already been alerted.
    escalated: bool,
    /// Fire-and-forget write (`ack_writes = false`): assumed successful
    /// unless an error reply arrives before the driver settles — the
    /// paper's 1-message insert cost model.
    optimistic: bool,
    /// Sim time the request was first issued (op-latency histogram).
    issued_at: u64,
}

/// Per-bucket scan reply: the bucket's level and its matching records.
type ScanReply = (u8, Vec<(Key, Vec<u8>)>);

/// An in-progress scan: replies collected so far.
struct ScanState {
    /// bucket → (level, hits)
    replies: BTreeMap<u64, ScanReply>,
    timer: TimerId,
    termination: ScanTermination,
    /// The filter, kept for retransmission to unresponsive buckets.
    filter: FilterSpec,
    /// Retransmission rounds attempted (bounded by `client_retries`).
    attempts: u32,
}

/// An LH\*RS client.
///
/// Holds the file image `(n', i')`, never the true file state. Exposes its
/// completion queue to the driver via [`Client::take_results`].
pub struct Client {
    shared: SharedHandle,
    /// The client's LH\* image.
    pub image: ClientImage,
    pending: HashMap<OpId, Pending>,
    scans: HashMap<OpId, ScanState>,
    timer_to_op: HashMap<TimerId, OpId>,
    results: Vec<(OpId, OpResult)>,
    /// IAMs received — the convergence metric of experiment F1.
    pub iams_received: u64,
    /// Requests that needed coordinator assistance (failure path metric).
    pub escalations: u64,
    /// Retransmissions sent (request or scan rounds) — the fault-overhead
    /// metric of the loss-rate experiments.
    pub retries: u64,
}

impl Client {
    /// A fresh client with the worst-case image (one bucket).
    pub fn new(shared: SharedHandle) -> Self {
        Client {
            shared,
            image: ClientImage::new(1),
            pending: HashMap::new(),
            scans: HashMap::new(),
            timer_to_op: HashMap::new(),
            results: Vec::new(),
            iams_received: 0,
            escalations: 0,
            retries: 0,
        }
    }

    /// Drain completed operations.
    pub fn take_results(&mut self) -> Vec<(OpId, OpResult)> {
        std::mem::take(&mut self.results)
    }

    /// Settle optimistic (un-acked) writes as successes. Called by the
    /// driver once the network is quiet: any error reply would have
    /// arrived and resolved the op by then.
    pub fn settle_optimistic(&mut self) {
        // Lookups are never optimistic (they always get replies); a lookup
        // in this set would be a logic bug, and is left pending rather than
        // fabricating a result.
        let settled: Vec<OpId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.optimistic && !matches!(p.kind, ReqKind::Lookup(..)))
            .map(|(id, _)| *id)
            .collect();
        for op_id in settled {
            let Some(p) = self.pending.remove(&op_id) else {
                continue;
            };
            let result = match p.kind {
                ReqKind::Insert(..) => OpResult::Inserted,
                ReqKind::Update(..) => OpResult::Updated,
                ReqKind::Delete(..) => OpResult::Deleted,
                ReqKind::Lookup(..) => continue, // filtered out above
            };
            self.results.push((op_id, result));
        }
    }

    /// Number of operations still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len() + self.scans.len()
    }

    /// Main message handler.
    pub fn on_message(&mut self, env: &mut Env<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Do { op_id, op } => self.start_op(env, op_id, op),
            Msg::Reply { op_id, result, iam } => {
                if let Some(iam) = iam {
                    self.image.adjust(iam.level, iam.bucket);
                    self.iams_received += 1;
                }
                if let Some(p) = self.pending.remove(&op_id) {
                    if let Some(t) = p.timer {
                        env.cancel_timer(t);
                        self.timer_to_op.remove(&t);
                    }
                    env.obs()
                        .observe_us("op_latency", env.now().saturating_sub(p.issued_at));
                    self.results.push((op_id, result));
                }
            }
            Msg::ScanReply {
                op_id,
                bucket,
                level,
                hits,
            } => {
                let done = {
                    let Some(scan) = self.scans.get_mut(&op_id) else {
                        return;
                    };
                    scan.replies.insert(bucket, (level, hits));
                    // Deterministic termination: with i = min level received
                    // and n = the smallest bucket at that level, the file
                    // has exactly M = n + 2^i buckets; finish once every
                    // bucket 0..M-1 has replied.
                    // `replies` is nonempty: one was inserted just above.
                    let Some(i) = scan.replies.values().map(|(l, _)| *l).min() else {
                        return;
                    };
                    let Some(n) = scan
                        .replies
                        .iter()
                        .filter(|(_, (l, _))| *l == i)
                        .map(|(b, _)| *b)
                        .min()
                    else {
                        return;
                    };
                    let expected = n + (1u64 << i);
                    scan.replies.len() as u64 == expected
                        && scan.replies.keys().copied().eq(0..expected)
                };
                if done {
                    self.finish_scan(env, op_id);
                }
            }
            other => {
                debug_assert!(false, "client got {:?}", other);
            }
        }
    }

    /// Timer handler: retry a stalled request (bounded exponential
    /// backoff), then escalate it to the coordinator, then give up after
    /// the escalation grace period.
    pub fn on_timer(&mut self, env: &mut Env<'_, Msg>, timer: TimerId) {
        let Some(&op_id) = self.timer_to_op.get(&timer) else {
            return;
        };
        self.timer_to_op.remove(&timer);
        if self.pending.contains_key(&op_id) {
            let (escalated, attempts, key) = {
                let Some(p) = self.pending.get(&op_id) else {
                    return;
                };
                (p.escalated, p.attempts, p.kind.key())
            };
            if !escalated && attempts < self.shared.cfg.client_retries {
                // Retry: the request or its reply may simply have been
                // lost. Re-resolve the address — the bucket may have moved
                // (split, recovery) while we waited.
                let bucket = self.clamped_address(key);
                let node = self.shared.registry.borrow().data_node(bucket);
                let backoff = (self.shared.cfg.client_timeout_us << (attempts + 1))
                    .min(self.shared.cfg.retry_backoff_cap_us);
                let new_timer = env.set_timer(backoff);
                self.timer_to_op.insert(new_timer, op_id);
                self.retries += 1;
                env.obs().incr("client_retries");
                env.trace(ObsEvent::Retry {
                    op: op_id,
                    attempt: u64::from(attempts) + 1,
                });
                let me = env.me();
                let Some(p) = self.pending.get_mut(&op_id) else {
                    return;
                };
                p.attempts += 1;
                p.sent_to = bucket;
                p.timer = Some(new_timer);
                let kind = p.kind.clone();
                env.send(
                    node,
                    Msg::Req {
                        op_id,
                        client: me,
                        intended: bucket,
                        hops: 0,
                        kind,
                    },
                );
            } else if !escalated {
                let Some(p) = self.pending.get_mut(&op_id) else {
                    return;
                };
                p.escalated = true;
                self.escalations += 1;
                env.obs().incr("client_escalations");
                // Grace period for detection + degraded service + recovery.
                let new_timer = env.set_timer(self.shared.cfg.client_timeout_us * 50);
                p.timer = Some(new_timer);
                self.timer_to_op.insert(new_timer, op_id);
                let coord = self.shared.registry.borrow().coordinator;
                let (bucket, kind) = (p.sent_to, p.kind.clone());
                env.send(
                    coord,
                    Msg::Suspect {
                        op_id,
                        client: env.me(),
                        bucket,
                        kind,
                    },
                );
            } else {
                // Even the coordinator could not complete it.
                self.pending.remove(&op_id);
                self.results.push((
                    op_id,
                    OpResult::Failed("request unrecoverable or timed out".into()),
                ));
            }
        } else if let Some(scan) = self.scans.get(&op_id) {
            match scan.termination {
                // The silence window elapsed: the probabilistic scan is
                // complete with whatever replied.
                ScanTermination::Probabilistic { .. } => self.finish_scan(env, op_id),
                ScanTermination::Deterministic => self.retry_or_fail_scan(env, op_id),
            }
        }
    }

    /// A deterministic scan timed out: re-send it to the buckets that have
    /// not replied (messages or replies may have been lost), or fail the
    /// scan once the retry budget is spent.
    fn retry_or_fail_scan(&mut self, env: &mut Env<'_, Msg>, op_id: OpId) {
        let (attempts, replied, min_level) = {
            let Some(scan) = self.scans.get(&op_id) else {
                return;
            };
            (
                scan.attempts,
                scan.replies
                    .iter()
                    .map(|(b, (l, _))| (*b, *l))
                    .collect::<Vec<(u64, u8)>>(),
                scan.replies.values().map(|(l, _)| *l).min(),
            )
        };
        if attempts >= self.shared.cfg.client_retries {
            self.scans.remove(&op_id);
            self.results
                .push((op_id, OpResult::Failed("scan timed out".into())));
            return;
        }
        // Rebuild the target set. With replies in hand the expected bucket
        // range is known exactly (the termination rule); without any, fall
        // back to the image. Buckets that replied are skipped; re-reaching
        // a bucket twice is harmless (replies are keyed by bucket).
        let mut targets: Vec<(u64, u8)> = Vec::new();
        match min_level {
            Some(i) => {
                // Same rule as the termination check: n = smallest bucket at
                // the minimum level ⇒ the file has n + 2^i buckets.
                // `min_level` came from this same reply set, so a bucket at
                // that level exists.
                let Some(n) = replied
                    .iter()
                    .filter(|(_, l)| *l == i)
                    .map(|(b, _)| *b)
                    .min()
                else {
                    return;
                };
                let expected = n + (1u64 << i);
                for b in 0..expected {
                    if !replied.iter().any(|(rb, _)| *rb == b) {
                        targets.push((b, i));
                    }
                }
            }
            None => {
                self.clamped_address(0);
                for b in 0..self.image.bucket_count() {
                    targets.push((b, self.image.level_of(b)));
                }
            }
        }
        let me = env.me();
        let new_timer = env.set_timer(self.shared.cfg.client_timeout_us * 50);
        self.timer_to_op.insert(new_timer, op_id);
        self.retries += 1;
        env.obs().incr("client_retries");
        env.trace(ObsEvent::Retry {
            op: op_id,
            attempt: u64::from(attempts) + 1,
        });
        let Some(scan) = self.scans.get_mut(&op_id) else {
            return;
        };
        scan.attempts += 1;
        scan.timer = new_timer;
        let filter = scan.filter.clone();
        for (b, assumed_level) in targets {
            // A networked host's allocation table can lag the level a reply
            // advertised; skip unmapped buckets — the next retry round sees
            // a fresher table.
            let Some(node) = self.shared.registry.borrow().try_data_node(b) else {
                continue;
            };
            env.send(
                node,
                Msg::Scan {
                    op_id,
                    client: me,
                    filter: filter.clone(),
                    assumed_level,
                    reply_if_empty: true,
                },
            );
        }
    }

    /// Close out a scan: fold levels into the image, sort, deliver.
    fn finish_scan(&mut self, env: &mut Env<'_, Msg>, op_id: OpId) {
        let Some(scan) = self.scans.remove(&op_id) else {
            return;
        };
        env.cancel_timer(scan.timer);
        self.timer_to_op.remove(&scan.timer);
        for (b, (l, _)) in &scan.replies {
            self.image.adjust(*l, *b);
        }
        let mut hits: Vec<(Key, Vec<u8>)> =
            scan.replies.into_values().flat_map(|(_, h)| h).collect();
        hits.sort_by_key(|(k, _)| *k);
        self.results.push((op_id, OpResult::ScanHits(hits)));
    }

    fn start_op(&mut self, env: &mut Env<'_, Msg>, op_id: OpId, op: ClientOp) {
        match op {
            ClientOp::Insert { key, payload } => {
                self.send_req(env, op_id, ReqKind::Insert(key, payload))
            }
            ClientOp::Lookup { key } => self.send_req(env, op_id, ReqKind::Lookup(key)),
            ClientOp::Update { key, payload } => {
                self.send_req(env, op_id, ReqKind::Update(key, payload))
            }
            ClientOp::Delete { key } => self.send_req(env, op_id, ReqKind::Delete(key)),
            ClientOp::Scan { filter } => self.start_scan(env, op_id, filter),
        }
    }

    fn send_req(&mut self, env: &mut Env<'_, Msg>, op_id: OpId, kind: ReqKind) {
        let bucket = self.clamped_address(kind.key());
        let node = self.shared.registry.borrow().data_node(bucket);
        // Lookups always get a reply; writes only in ack mode. Un-acked
        // writes are optimistic: no timer, settled by the driver.
        let needs_reply = matches!(kind, ReqKind::Lookup(_)) || self.shared.cfg.ack_writes;
        let timer = needs_reply.then(|| {
            let t = env.set_timer(self.shared.cfg.client_timeout_us);
            self.timer_to_op.insert(t, op_id);
            t
        });
        self.pending.insert(
            op_id,
            Pending {
                kind: kind.clone(),
                sent_to: bucket,
                timer,
                attempts: 0,
                escalated: false,
                optimistic: !needs_reply,
                issued_at: env.now(),
            },
        );
        env.send(
            node,
            Msg::Req {
                op_id,
                client: env.me(),
                intended: bucket,
                hops: 0,
                kind,
            },
        );
    }

    /// A1 over the image, coarsening the image first if it is *ahead* of a
    /// file that shrank through merges (detected via the allocation table,
    /// exactly as a real client would get "no such bucket" from its local
    /// table and decrement its image).
    fn clamped_address(&mut self, key: Key) -> u64 {
        let m = self.shared.registry.borrow().data_count() as u64;
        while self.image.bucket_count() > m {
            let regressed = self.image.regress();
            debug_assert!(regressed, "image cannot be ahead of a 1-bucket file");
        }
        self.image.address(key)
    }

    fn start_scan(&mut self, env: &mut Env<'_, Msg>, op_id: OpId, filter: FilterSpec) {
        // Unicast one scan message per bucket in the image, each tagged with
        // the level the image assumes — that tag drives exactly-once
        // propagation to buckets the image does not know about.
        let me = env.me();
        let termination = self.shared.cfg.scan_termination;
        let (timer, reply_if_empty) = match termination {
            ScanTermination::Deterministic => {
                (env.set_timer(self.shared.cfg.client_timeout_us * 50), true)
            }
            // The initial silence window also covers the in-flight time of
            // the scan requests themselves.
            ScanTermination::Probabilistic { silence_us } => (env.set_timer(silence_us), false),
        };
        self.timer_to_op.insert(timer, op_id);
        self.scans.insert(
            op_id,
            ScanState {
                replies: BTreeMap::new(),
                timer,
                termination,
                filter: filter.clone(),
                attempts: 0,
            },
        );
        // Coarsen first if the file shrank below the image.
        self.clamped_address(0);
        let count = self.image.bucket_count();
        for b in 0..count {
            let node = self.shared.registry.borrow().data_node(b);
            env.send(
                node,
                Msg::Scan {
                    op_id,
                    client: me,
                    filter: filter.clone(),
                    assumed_level: self.image.level_of(b),
                    reply_if_empty,
                },
            );
        }
    }
}
