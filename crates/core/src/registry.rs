//! The allocation table mapping logical buckets to simulated nodes.
//!
//! In the papers every client and server keeps a *physical allocation
//! table* translating logical bucket numbers to network addresses; the
//! tables are piggyback-updated and their maintenance is not part of the
//! operation cost model. We model them as one shared table (`Rc<RefCell>` —
//! the simulation is single-threaded), updated by the coordinator when
//! buckets are created or recovered onto spares. Message *costs* are
//! unaffected: resolving a logical address is a local operation in the
//! paper too. The displaced-bucket corner case (a client racing a
//! recovery) is exercised separately through the coordinator-assisted
//! delivery path.

use std::cell::RefCell;
use std::rc::Rc;

use lhrs_sim::NodeId;

use crate::Config;

/// Shared state every node holds a handle to: the allocation table plus the
/// immutable file configuration.
pub struct Shared {
    /// The allocation table.
    pub registry: RefCell<Registry>,
    /// File configuration (immutable after creation).
    pub cfg: Config,
    /// Optional durable-store factory: when set, buckets attach a
    /// [`crate::storage::BucketStore`] on initialisation and log committed
    /// ops to it. `None` = the paper's RAM-only multicomputer.
    store_factory: RefCell<Option<crate::storage::StoreFactory>>,
}

/// Cheap clonable handle.
pub type SharedHandle = Rc<Shared>;

/// Logical-to-physical address maps.
#[derive(Debug)]
pub struct Registry {
    /// Data bucket number → node.
    data: Vec<NodeId>,
    /// Per bucket group: parity column index → node.
    parity: Vec<Vec<NodeId>>,
    /// The coordinator node.
    pub coordinator: NodeId,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            data: Vec::new(),
            parity: Vec::new(),
            coordinator: lhrs_sim::EXTERNAL,
        }
    }
}

impl Registry {
    /// Node currently carrying data bucket `b`.
    ///
    /// # Panics
    /// Panics if the bucket does not exist — addressing logic must never
    /// produce a bucket number beyond the file.
    pub fn data_node(&self, b: u64) -> NodeId {
        self.data[b as usize]
    }

    /// Node carrying data bucket `b`, or `None` when the table has no such
    /// bucket. The non-panicking variant for paths that can legitimately
    /// race a stale table (a networked host whose registry snapshot lags the
    /// coordinator); the caller drops the message and relies on retries.
    pub fn try_data_node(&self, b: u64) -> Option<NodeId> {
        self.data.get(b as usize).copied()
    }

    /// Number of data buckets (`M`).
    pub fn data_count(&self) -> usize {
        self.data.len()
    }

    /// Register the next data bucket (must be appended densely).
    pub fn push_data(&mut self, bucket: u64, node: NodeId) {
        assert_eq!(bucket as usize, self.data.len(), "buckets append densely");
        self.data.push(node);
    }

    /// Redirect data bucket `b` to a new node (recovery onto a spare).
    pub fn move_data(&mut self, b: u64, node: NodeId) {
        self.data[b as usize] = node;
    }

    /// Remove the last data bucket (merge); returns its ex-node.
    pub fn pop_data(&mut self) -> NodeId {
        self.data.pop().expect("cannot shrink an empty file")
    }

    /// Drop the last group's (empty) parity mapping, returning its nodes
    /// for decommissioning.
    pub fn pop_parity_group(&mut self) -> Vec<NodeId> {
        self.parity.pop().unwrap_or_default()
    }

    /// Parity nodes of bucket group `g` (empty slice if the group has no
    /// parity yet).
    pub fn parity_nodes(&self, g: u64) -> &[NodeId] {
        self.parity
            .get(g as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Availability level of group `g` as reflected by the table.
    pub fn group_k(&self, g: u64) -> usize {
        self.parity_nodes(g).len()
    }

    /// Number of bucket groups with any parity provisioned.
    pub fn group_count(&self) -> usize {
        self.parity.len()
    }

    /// Set (or extend) the parity nodes of group `g`.
    pub fn set_parity(&mut self, g: u64, nodes: Vec<NodeId>) {
        let g = g as usize;
        if self.parity.len() <= g {
            self.parity.resize(g + 1, Vec::new());
        }
        self.parity[g] = nodes;
    }

    /// Redirect parity column `q` of group `g` to a new node.
    pub fn move_parity(&mut self, g: u64, q: usize, node: NodeId) {
        self.parity[g as usize][q] = node;
    }

    /// All live node ids of the file (data then parity), for scans and
    /// file-state recovery fan-out.
    pub fn all_data_nodes(&self) -> Vec<NodeId> {
        self.data.clone()
    }
}

impl Shared {
    /// Create the shared handle.
    pub fn new(cfg: Config) -> SharedHandle {
        Rc::new(Shared {
            registry: RefCell::new(Registry::default()),
            cfg,
            store_factory: RefCell::new(None),
        })
    }

    /// Install a durable-store factory; buckets initialised afterwards
    /// attach a store for their own identity.
    pub fn set_store_factory(&self, factory: crate::storage::StoreFactory) {
        *self.store_factory.borrow_mut() = Some(factory);
    }

    /// Build a store for `(node, id)` via the installed factory, if any.
    /// The factory itself may decline (e.g. a simulated node whose "disk"
    /// was destroyed), which also yields `None`.
    pub fn make_store(
        &self,
        node: NodeId,
        id: &crate::storage::StoreId,
    ) -> Option<Box<dyn crate::storage::BucketStore>> {
        let factory = self.store_factory.borrow();
        factory.as_ref().and_then(|f| f(node, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_append_enforced() {
        let mut r = Registry::default();
        r.push_data(0, NodeId(10));
        r.push_data(1, NodeId(11));
        assert_eq!(r.data_node(1), NodeId(11));
        assert_eq!(r.data_count(), 2);
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn sparse_append_panics() {
        let mut r = Registry::default();
        r.push_data(5, NodeId(1));
    }

    #[test]
    fn parity_groups_grow_on_demand() {
        let mut r = Registry::default();
        assert_eq!(r.group_k(3), 0);
        r.set_parity(2, vec![NodeId(7), NodeId(8)]);
        assert_eq!(r.group_k(2), 2);
        assert_eq!(r.parity_nodes(2), &[NodeId(7), NodeId(8)]);
        assert_eq!(r.parity_nodes(0), &[] as &[NodeId]);
        r.move_parity(2, 1, NodeId(9));
        assert_eq!(r.parity_nodes(2), &[NodeId(7), NodeId(9)]);
    }
}
