//! The node dispatcher: one simulated server can be blank (pool/spare), a
//! data bucket, a parity bucket, a client, or the coordinator.

use lhrs_sim::{Actor, Env, NodeId, TimerId};

use crate::client::Client;
use crate::coordinator::Coordinator;
use crate::data_bucket::DataBucket;
use crate::msg::{Msg, ShardContent};
use crate::parity_bucket::ParityBucket;
use crate::registry::SharedHandle;
use crate::storage::StoreId;

/// A node of the LH\*RS multicomputer.
// A Node is heap-allocated once per hosted actor, never moved in bulk;
// the variant size spread (DataBucket's in-memory records dominate) is
// not worth an indirection on every dispatch.
#[allow(clippy::large_enum_variant)]
pub enum Node {
    /// Unallocated pool node / hot spare. Buffers any early messages (a
    /// race possible only under extreme latency models) and replays them
    /// once initialised.
    Blank {
        /// Shared registry/config handle.
        shared: SharedHandle,
        /// Messages that arrived before initialisation.
        pending: Vec<(NodeId, Msg)>,
    },
    /// A primary (data) bucket.
    Data(DataBucket),
    /// A parity bucket.
    Parity(ParityBucket),
    /// A client.
    Client(Client),
    /// The coordinator (boxed: it carries the recovery state machines and
    /// would otherwise dominate the enum's size).
    Coordinator(Box<Coordinator>),
}

impl Node {
    /// Access the client state (panics otherwise) — driver convenience.
    pub fn as_client(&self) -> &Client {
        match self {
            Node::Client(c) => c,
            _ => panic!("node is not a client"),
        }
    }

    /// Mutable client access.
    pub fn as_client_mut(&mut self) -> &mut Client {
        match self {
            Node::Client(c) => c,
            _ => panic!("node is not a client"),
        }
    }

    /// Access the coordinator state (panics otherwise).
    pub fn as_coordinator(&self) -> &Coordinator {
        match self {
            Node::Coordinator(c) => c,
            _ => panic!("node is not the coordinator"),
        }
    }

    /// Mutable coordinator access.
    pub fn as_coordinator_mut(&mut self) -> &mut Coordinator {
        match self {
            Node::Coordinator(c) => c,
            _ => panic!("node is not the coordinator"),
        }
    }

    /// Access a data bucket (panics otherwise).
    pub fn as_data(&self) -> &DataBucket {
        match self {
            Node::Data(d) => d,
            _ => panic!("node is not a data bucket"),
        }
    }

    /// Mutable data-bucket access.
    pub fn as_data_mut(&mut self) -> &mut DataBucket {
        match self {
            Node::Data(d) => d,
            _ => panic!("node is not a data bucket"),
        }
    }

    /// Access a parity bucket (panics otherwise).
    pub fn as_parity(&self) -> &ParityBucket {
        match self {
            Node::Parity(p) => p,
            _ => panic!("node is not a parity bucket"),
        }
    }

    /// Mutable parity-bucket access.
    pub fn as_parity_mut(&mut self) -> &mut ParityBucket {
        match self {
            Node::Parity(p) => p,
            _ => panic!("node is not a parity bucket"),
        }
    }

    /// Whether the node is still an unallocated blank.
    pub fn is_blank(&self) -> bool {
        matches!(self, Node::Blank { .. })
    }

    /// Initialise a blank node per an init/install message; returns the
    /// replacement plus any buffered messages to replay.
    fn initialise(
        shared: &SharedHandle,
        pending: &mut Vec<(NodeId, Msg)>,
        env: &mut Env<'_, Msg>,
        from: NodeId,
        msg: Msg,
    ) -> Option<Node> {
        match msg {
            Msg::InitData {
                bucket,
                level,
                delta_seq,
            } => {
                let mut d = DataBucket::new(shared.clone(), bucket, level);
                d.resume_delta_seq(delta_seq);
                Node::attach_data_store(shared, env.me(), &mut d);
                Some(Node::Data(d))
            }
            Msg::InitParity { group, index, k } => {
                let mut p = ParityBucket::new(shared.clone(), group, index, k);
                Node::attach_parity_store(shared, env.me(), &mut p);
                Some(Node::Parity(p))
            }
            Msg::Install {
                group,
                bucket,
                index,
                k,
                content,
                token,
            } => {
                let node = match content {
                    ShardContent::Data {
                        level,
                        next_rank,
                        delta_seq,
                        records,
                    } => {
                        let mut d = DataBucket::from_content(
                            shared.clone(),
                            bucket.expect("data install carries a bucket number"),
                            level,
                            next_rank,
                            delta_seq,
                            records,
                        );
                        Node::attach_data_store(shared, env.me(), &mut d);
                        // The predecessor may have died with a split's
                        // partition unexecuted: records the reconstruction
                        // restored that address elsewhere at the installed
                        // level must move to their home buckets now.
                        d.expel_misplaced(env);
                        Node::Data(d)
                    }
                    ShardContent::Parity { records, col_seqs } => {
                        let mut p = ParityBucket::from_content(
                            shared.clone(),
                            group,
                            index.expect("parity install carries an index"),
                            k,
                            records,
                            col_seqs,
                        );
                        Node::attach_parity_store(shared, env.me(), &mut p);
                        Node::Parity(p)
                    }
                };
                env.send(from, Msg::InstallAck { token });
                Some(node)
            }
            other => {
                pending.push((from, other));
                None
            }
        }
    }

    /// Attach (and seed) a durable store to a freshly initialised data
    /// bucket. The RAM content just installed is authoritative: any stale
    /// incarnation on the "disk" is erased before the seeding snapshot.
    fn attach_data_store(shared: &SharedHandle, me: NodeId, d: &mut DataBucket) {
        let id = StoreId::Data { bucket: d.bucket };
        if let Some(mut store) = shared.make_store(me, &id) {
            let _ = store.reset();
            d.attach_store(store);
            d.snapshot_now();
        }
    }

    /// Ditto for a freshly initialised parity bucket.
    fn attach_parity_store(shared: &SharedHandle, me: NodeId, p: &mut ParityBucket) {
        let id = StoreId::Parity {
            group: p.group,
            index: p.index,
        };
        if let Some(mut store) = shared.make_store(me, &id) {
            let _ = store.reset();
            p.attach_store(store);
            p.snapshot_now();
        }
    }

    /// Attach (and seed) a durable store to a node whose bucket was built
    /// directly by a driver (initial cluster layout) rather than through
    /// an `Init`/`Install` message. No-op for blanks, clients, the
    /// coordinator, or when the factory declines.
    pub fn attach_fresh_store(&mut self, me: NodeId) {
        match self {
            Node::Data(d) => {
                let shared = d.shared_handle();
                Node::attach_data_store(&shared, me, d);
            }
            Node::Parity(p) => {
                let shared = p.shared_handle();
                Node::attach_parity_store(&shared, me, p);
            }
            _ => {}
        }
    }

    /// Flush the attached store's buffered appends, if any — the
    /// once-per-batch hook behind [`crate::FsyncPolicy::Batch`]. Returns
    /// how many buffered appends the sync made durable.
    pub fn sync_store(&mut self) -> u64 {
        match self {
            Node::Data(d) => d.sync_store(),
            Node::Parity(p) => p.sync_store(),
            _ => 0,
        }
    }
}

impl Actor<Msg> for Node {
    fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
        // Retirement applies to whole nodes, independent of role.
        if matches!(msg, Msg::Retire) {
            let shared = match self {
                Node::Blank { shared, .. } => shared.clone(),
                Node::Data(d) => {
                    // The logical bucket is moving elsewhere: wipe the local
                    // log so a later restart cannot resurrect a stale copy.
                    d.reset_store();
                    d.shared_handle()
                }
                Node::Parity(p) => {
                    p.reset_store();
                    p.shared_handle()
                }
                Node::Client(_) | Node::Coordinator(_) => {
                    debug_assert!(false, "clients/coordinator are never retired");
                    return;
                }
            };
            *self = Node::Blank {
                shared,
                pending: Vec::new(),
            };
            return;
        }
        match self {
            Node::Blank { shared, pending } => {
                if let Some(mut node) = Node::initialise(shared, pending, env, from, msg) {
                    // Replay anything that raced ahead of the init.
                    let replay = std::mem::take(pending);
                    for (f, m) in replay {
                        node.on_message(env, f, m);
                    }
                    *self = node;
                }
            }
            Node::Data(d) => d.on_message(env, from, msg),
            Node::Parity(p) => p.on_message(env, from, msg),
            Node::Client(c) => c.on_message(env, from, msg),
            Node::Coordinator(c) => c.on_message(env, from, msg),
        }
    }

    fn on_timer(&mut self, env: &mut Env<'_, Msg>, timer: TimerId) {
        match self {
            Node::Client(c) => c.on_timer(env, timer),
            Node::Coordinator(c) => c.on_timer(env, timer),
            Node::Data(d) => d.on_timer(env, timer),
            _ => {}
        }
    }
}
