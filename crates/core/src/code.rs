//! Field-dispatched Reed–Solomon code: the LH\*RS core can run over
//! GF(2^8) (the SIGMOD 2000 default — compact tables, `m + k ≤ 256`) or
//! GF(2^16) (the TODS refinement — supports groups up to 65 536 shards,
//! two-byte symbols). All shard-level operations are byte-buffer based, so
//! the rest of the system is field-agnostic.

use lhrs_gf::{Gf16, Gf8};
use lhrs_rs::{RsCode, RsError};

/// Which Galois field the file's parity arithmetic runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GfField {
    /// GF(2^8): one-byte symbols, `m + k ≤ 256`. The paper's default.
    #[default]
    Gf8,
    /// GF(2^16): two-byte symbols, `m + k ≤ 65 536`; coding cells must have
    /// even length (enforced by config validation on `record_len`).
    Gf16,
}

impl GfField {
    /// Maximum supported `m + k`.
    pub fn max_shards(self) -> usize {
        match self {
            GfField::Gf8 => 256,
            GfField::Gf16 => 65_536,
        }
    }

    /// Symbol size in bytes (buffer lengths must be multiples of this).
    pub fn symbol_bytes(self) -> usize {
        match self {
            GfField::Gf8 => 1,
            GfField::Gf16 => 2,
        }
    }
}

/// An `RsCode` over either field, dispatching the byte-level operations the
/// LH\*RS actors need.
#[derive(Clone, Debug)]
pub enum AnyCode {
    /// GF(2^8)-backed code.
    G8(RsCode<Gf8>),
    /// GF(2^16)-backed code.
    G16(RsCode<Gf16>),
}

impl AnyCode {
    /// Build the `(m + k, m)` code over the chosen field.
    pub fn new(field: GfField, m: usize, k: usize) -> Result<Self, RsError> {
        match field {
            GfField::Gf8 => RsCode::new(m, k).map(AnyCode::G8),
            GfField::Gf16 => RsCode::new(m, k).map(AnyCode::G16),
        }
    }

    /// `parity ^= Γ[col][index] · delta` — the parity bucket's Δ-commit.
    pub fn apply_delta(&self, col: usize, index: usize, delta: &[u8], parity: &mut [u8]) {
        match self {
            AnyCode::G8(c) => c.apply_delta(col, index, delta, parity),
            AnyCode::G16(c) => c.apply_delta(col, index, delta, parity),
        }
    }

    /// Full parity computation from `m` data buffers.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, RsError> {
        match self {
            AnyCode::G8(c) => c.encode(data),
            AnyCode::G16(c) => c.encode(data),
        }
    }

    /// Erasure decode in place (`shards.len() == m + k`).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        match self {
            AnyCode::G8(c) => c.reconstruct(shards),
            AnyCode::G16(c) => c.reconstruct(shards),
        }
    }

    /// Rebuild a single data shard from `m` available shards.
    pub fn reconstruct_one(
        &self,
        target: usize,
        available: &[(usize, &[u8])],
    ) -> Result<Vec<u8>, RsError> {
        match self {
            AnyCode::G8(c) => c.reconstruct_one(target, available),
            AnyCode::G16(c) => c.reconstruct_one(target, available),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_fields_roundtrip_through_dispatch() {
        for field in [GfField::Gf8, GfField::Gf16] {
            let code = AnyCode::new(field, 4, 2).unwrap();
            let data: Vec<Vec<u8>> = (0..4).map(|i| vec![(i * 31 + 5) as u8; 16]).collect();
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = code.encode(&refs).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .chain(parity.iter())
                .cloned()
                .map(Some)
                .collect();
            shards[1] = None;
            shards[4] = None;
            code.reconstruct(&mut shards).unwrap();
            assert_eq!(shards[1].as_deref(), Some(&data[1][..]), "{field:?}");
            assert_eq!(shards[4].as_deref(), Some(&parity[0][..]), "{field:?}");
        }
    }

    #[test]
    fn gf16_supports_giant_groups() {
        assert!(AnyCode::new(GfField::Gf8, 300, 4).is_err());
        assert!(AnyCode::new(GfField::Gf16, 300, 4).is_ok());
        assert_eq!(GfField::Gf8.max_shards(), 256);
        assert_eq!(GfField::Gf16.max_shards(), 65_536);
    }

    #[test]
    fn delta_commit_matches_encode_both_fields() {
        for field in [GfField::Gf8, GfField::Gf16] {
            let code = AnyCode::new(field, 3, 2).unwrap();
            let zero = vec![0u8; 12];
            let d: Vec<Vec<u8>> = (0..3).map(|i| vec![(7 * i + 1) as u8; 12]).collect();
            let mut parity = vec![vec![0u8; 12]; 2];
            for (i, buf) in d.iter().enumerate() {
                for (j, p) in parity.iter_mut().enumerate() {
                    code.apply_delta(i, j, buf, p);
                }
            }
            let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
            let direct = code.encode(&refs).unwrap();
            assert_eq!(parity, direct, "{field:?}");
            let _ = zero;
        }
    }
}
