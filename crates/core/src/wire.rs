//! Binary wire codec for the LH\*RS protocol.
//!
//! Everything a [`Msg`] can carry is encoded into a self-contained byte
//! string so messages can cross real sockets (the `lhrs-net` crate) instead
//! of being moved in-memory by the simulator. The workspace is
//! registry-free, so the codec is hand-rolled and zero-dependency:
//!
//! * **Versioned**: every encoding starts with [`WIRE_VERSION`]; a decoder
//!   refuses other versions with [`WireError::Version`].
//! * **Tagged**: each enum variant carries a one-byte tag (see [`tag`] for
//!   the full table, mirrored in `DESIGN.md`). Unknown tags are rejected
//!   with [`WireError::UnknownTag`] naming the enum that was being decoded.
//! * **Varint integers**: `u64`/`usize` quantities use LEB128 (7 bits per
//!   byte, little-endian groups), so small keys, ranks, and lengths cost one
//!   byte. Node ids are fixed 4-byte little-endian (they include the
//!   `u32::MAX` driver sentinel).
//! * **Defensive decode**: length fields are checked against both a hard
//!   cap ([`MAX_LEN`], rejecting absurd claims before any allocation) and
//!   the bytes actually remaining (rejecting truncated frames), and a
//!   successful decode must consume the buffer exactly ([`WireError::Trailing`]).
//!   No input can make the decoder panic or over-allocate.
//!
//! Encode→decode is the identity on every well-formed message; the
//! `wire_roundtrip` integration test fuzzes this across all variants.

use lhrs_sim::NodeId;

use crate::coordinator::CoordEvent;
use crate::msg::{
    ClientOp, DeltaEntry, FilterSpec, Iam, KeyOp, Msg, OpResult, ReplayEntry, ReqKind, ShardContent,
};
use crate::record::Record;
use crate::{Key, Rank};

/// Wire format version; bumped on any incompatible layout change.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on any single length field (bytes or element count). Frames are
/// far smaller in practice; the cap only exists so a corrupt length cannot
/// trigger a giant allocation before the truncation check.
pub const MAX_LEN: u64 = 1 << 30;

/// Typed decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the encoding did.
    Truncated,
    /// The leading version byte is not [`WIRE_VERSION`].
    Version {
        /// The version byte found.
        got: u8,
    },
    /// An enum tag byte had no assigned meaning.
    UnknownTag {
        /// The enum being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length field exceeded [`MAX_LEN`].
    Oversized {
        /// The field being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// The encoding decoded cleanly but left unconsumed bytes.
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A varint ran past 10 bytes (would overflow `u64`).
    VarintOverflow,
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Version { got } => {
                write!(f, "wire version {got} (supported: {WIRE_VERSION})")
            }
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Oversized { what, len } => {
                write!(f, "oversized {what} length {len} (cap {MAX_LEN})")
            }
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            WireError::VarintOverflow => write!(f, "varint overflows u64"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for WireError {}

/// The tag table: one byte per [`Msg`] variant. Stable across versions of
/// the same [`WIRE_VERSION`]; new variants append, retired tags are never
/// reused.
pub mod tag {
    /// `Msg::Do`
    pub const DO: u8 = 1;
    /// `Msg::Req`
    pub const REQ: u8 = 2;
    /// `Msg::Reply`
    pub const REPLY: u8 = 3;
    /// `Msg::Scan`
    pub const SCAN: u8 = 4;
    /// `Msg::ScanReply`
    pub const SCAN_REPLY: u8 = 5;
    /// `Msg::ParityDelta`
    pub const PARITY_DELTA: u8 = 6;
    /// `Msg::ParityBatch`
    pub const PARITY_BATCH: u8 = 7;
    /// `Msg::ParityAck`
    pub const PARITY_ACK: u8 = 8;
    /// `Msg::ReportOverflow`
    pub const REPORT_OVERFLOW: u8 = 9;
    /// `Msg::InitData`
    pub const INIT_DATA: u8 = 10;
    /// `Msg::InitParity`
    pub const INIT_PARITY: u8 = 11;
    /// `Msg::DoSplit`
    pub const DO_SPLIT: u8 = 12;
    /// `Msg::SplitLoad`
    pub const SPLIT_LOAD: u8 = 13;
    /// `Msg::Suspect`
    pub const SUSPECT: u8 = 14;
    /// `Msg::Probe`
    pub const PROBE: u8 = 15;
    /// `Msg::ProbeAck`
    pub const PROBE_ACK: u8 = 16;
    /// `Msg::TransferShard`
    pub const TRANSFER_SHARD: u8 = 17;
    /// `Msg::ShardData`
    pub const SHARD_DATA: u8 = 18;
    /// `Msg::Install`
    pub const INSTALL: u8 = 19;
    /// `Msg::InstallAck`
    pub const INSTALL_ACK: u8 = 20;
    /// `Msg::FindRecord`
    pub const FIND_RECORD: u8 = 21;
    /// `Msg::FindRecordReply`
    pub const FIND_RECORD_REPLY: u8 = 22;
    /// `Msg::ReadCell`
    pub const READ_CELL: u8 = 23;
    /// `Msg::CellData`
    pub const CELL_DATA: u8 = 24;
    /// `Msg::SplitDone`
    pub const SPLIT_DONE: u8 = 25;
    /// `Msg::ForceMerge`
    pub const FORCE_MERGE: u8 = 26;
    /// `Msg::DoMerge`
    pub const DO_MERGE: u8 = 27;
    /// `Msg::MergeLoad`
    pub const MERGE_LOAD: u8 = 28;
    /// `Msg::MergeDone`
    pub const MERGE_DONE: u8 = 29;
    /// `Msg::Retire`
    pub const RETIRE: u8 = 30;
    /// `Msg::SelfReport`
    pub const SELF_REPORT: u8 = 31;
    /// `Msg::CheckOwnership`
    pub const CHECK_OWNERSHIP: u8 = 32;
    /// `Msg::OwnershipAck`
    pub const OWNERSHIP_ACK: u8 = 33;
    /// `Msg::CheckGroup`
    pub const CHECK_GROUP: u8 = 34;
    /// `Msg::RecoverFileState`
    pub const RECOVER_FILE_STATE: u8 = 35;
    /// `Msg::StateQuery`
    pub const STATE_QUERY: u8 = 36;
    /// `Msg::StateReply`
    pub const STATE_REPLY: u8 = 37;
    /// `Msg::RestartReport`
    pub const RESTART_REPORT: u8 = 38;
    /// `Msg::SuffixPull`
    pub const SUFFIX_PULL: u8 = 39;
    /// `Msg::DeltaSuffix`
    pub const DELTA_SUFFIX: u8 = 40;
    /// `Msg::SuffixInfo`
    pub const SUFFIX_INFO: u8 = 41;
    /// `Msg::RestartAbort`
    pub const RESTART_ABORT: u8 = 42;
    /// `Msg::ResumeWrites`
    pub const RESUME_WRITES: u8 = 43;
}

/// Tag table for [`CoordEvent`](crate::coordinator::CoordEvent) — a
/// separate namespace from [`tag`] (events never share a buffer with
/// messages).
pub mod etag {
    /// `CoordEvent::Split`
    pub const SPLIT: u8 = 1;
    /// `CoordEvent::KIncreased`
    pub const K_INCREASED: u8 = 2;
    /// `CoordEvent::GroupUpgraded`
    pub const GROUP_UPGRADED: u8 = 3;
    /// `CoordEvent::FailureDetected`
    pub const FAILURE_DETECTED: u8 = 4;
    /// `CoordEvent::GroupRecovered`
    pub const GROUP_RECOVERED: u8 = 5;
    /// `CoordEvent::GroupUnrecoverable`
    pub const GROUP_UNRECOVERABLE: u8 = 6;
    /// `CoordEvent::Merged`
    pub const MERGED: u8 = 7;
    /// `CoordEvent::StateRecovered`
    pub const STATE_RECOVERED: u8 = 8;
    /// `CoordEvent::RecoveryStalled`
    pub const RECOVERY_STALLED: u8 = 9;
    /// `CoordEvent::InvariantViolated`
    pub const INVARIANT_VIOLATED: u8 = 10;
    /// `CoordEvent::BucketRestarted`
    pub const BUCKET_RESTARTED: u8 = 11;
}

// ----- encoding primitives -----

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a varint-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Append a node id (fixed 4-byte little-endian, `u32::MAX` = driver).
pub fn put_node(out: &mut Vec<u8>, n: NodeId) {
    out.extend_from_slice(&n.0.to_le_bytes());
}

fn put_opt_node(out: &mut Vec<u8>, n: &Option<NodeId>) {
    match n {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            put_node(out, *n);
        }
    }
}

fn put_opt_varint(out: &mut Vec<u8>, v: &Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_varint(out, *v);
        }
    }
}

// ----- decoding primitives -----

/// A bounds-checked cursor over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.at).ok_or(WireError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    /// Read a fixed 4-byte little-endian `u32`.
    pub fn u32le(&mut self) -> Result<u32, WireError> {
        let s = self
            .buf
            .get(self.at..self.at + 4)
            .ok_or(WireError::Truncated)?;
        self.at += 4;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let low = (byte & 0x7f) as u64;
            // The 10th byte may only contribute the final bit.
            if shift == 63 && low > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Read a length field: a varint checked against [`MAX_LEN`] and the
    /// bytes remaining (every encoded element costs ≥ 1 byte, so a count
    /// beyond `remaining` is necessarily truncation).
    pub fn len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let n = self.varint()?;
        if n > MAX_LEN {
            return Err(WireError::Oversized { what, len: n });
        }
        if n as usize > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    /// Read `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let s = self
            .buf
            .get(self.at..self.at + n)
            .ok_or(WireError::Truncated)?;
        self.at += n;
        Ok(s)
    }

    /// Read a varint-length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let n = self.len(what)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a node id.
    pub fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId(self.u32le()?))
    }

    fn opt_node(&mut self) -> Result<Option<NodeId>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.node()?)),
            t => Err(WireError::UnknownTag {
                what: "Option<NodeId>",
                tag: t,
            }),
        }
    }

    fn opt_varint(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.varint()?)),
            t => Err(WireError::UnknownTag {
                what: "Option<u64>",
                tag: t,
            }),
        }
    }

    /// Require full consumption (call after the top-level decode).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Trailing {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

// ----- sub-codecs -----

fn put_filter(out: &mut Vec<u8>, f: &FilterSpec) {
    match f {
        FilterSpec::All => out.push(0),
        FilterSpec::PayloadContains(n) => {
            out.push(1);
            put_bytes(out, n);
        }
        FilterSpec::KeyRange(lo, hi) => {
            out.push(2);
            put_varint(out, *lo);
            put_varint(out, *hi);
        }
    }
}

fn get_filter(r: &mut Reader<'_>) -> Result<FilterSpec, WireError> {
    match r.u8()? {
        0 => Ok(FilterSpec::All),
        1 => Ok(FilterSpec::PayloadContains(r.bytes("filter needle")?)),
        2 => Ok(FilterSpec::KeyRange(r.varint()?, r.varint()?)),
        t => Err(WireError::UnknownTag {
            what: "FilterSpec",
            tag: t,
        }),
    }
}

fn put_client_op(out: &mut Vec<u8>, op: &ClientOp) {
    match op {
        ClientOp::Insert { key, payload } => {
            out.push(0);
            put_varint(out, *key);
            put_bytes(out, payload);
        }
        ClientOp::Lookup { key } => {
            out.push(1);
            put_varint(out, *key);
        }
        ClientOp::Update { key, payload } => {
            out.push(2);
            put_varint(out, *key);
            put_bytes(out, payload);
        }
        ClientOp::Delete { key } => {
            out.push(3);
            put_varint(out, *key);
        }
        ClientOp::Scan { filter } => {
            out.push(4);
            put_filter(out, filter);
        }
    }
}

fn get_client_op(r: &mut Reader<'_>) -> Result<ClientOp, WireError> {
    match r.u8()? {
        0 => Ok(ClientOp::Insert {
            key: r.varint()?,
            payload: r.bytes("payload")?,
        }),
        1 => Ok(ClientOp::Lookup { key: r.varint()? }),
        2 => Ok(ClientOp::Update {
            key: r.varint()?,
            payload: r.bytes("payload")?,
        }),
        3 => Ok(ClientOp::Delete { key: r.varint()? }),
        4 => Ok(ClientOp::Scan {
            filter: get_filter(r)?,
        }),
        t => Err(WireError::UnknownTag {
            what: "ClientOp",
            tag: t,
        }),
    }
}

fn put_req_kind(out: &mut Vec<u8>, k: &ReqKind) {
    match k {
        ReqKind::Insert(key, p) => {
            out.push(0);
            put_varint(out, *key);
            put_bytes(out, p);
        }
        ReqKind::Lookup(key) => {
            out.push(1);
            put_varint(out, *key);
        }
        ReqKind::Update(key, p) => {
            out.push(2);
            put_varint(out, *key);
            put_bytes(out, p);
        }
        ReqKind::Delete(key) => {
            out.push(3);
            put_varint(out, *key);
        }
    }
}

fn get_req_kind(r: &mut Reader<'_>) -> Result<ReqKind, WireError> {
    match r.u8()? {
        0 => Ok(ReqKind::Insert(r.varint()?, r.bytes("payload")?)),
        1 => Ok(ReqKind::Lookup(r.varint()?)),
        2 => Ok(ReqKind::Update(r.varint()?, r.bytes("payload")?)),
        3 => Ok(ReqKind::Delete(r.varint()?)),
        t => Err(WireError::UnknownTag {
            what: "ReqKind",
            tag: t,
        }),
    }
}

fn put_hits(out: &mut Vec<u8>, hits: &[(Key, Vec<u8>)]) {
    put_varint(out, hits.len() as u64);
    for (k, p) in hits {
        put_varint(out, *k);
        put_bytes(out, p);
    }
}

fn get_hits(r: &mut Reader<'_>) -> Result<Vec<(Key, Vec<u8>)>, WireError> {
    let n = r.len("hit list")?;
    let mut hits = Vec::with_capacity(n);
    for _ in 0..n {
        hits.push((r.varint()?, r.bytes("hit payload")?));
    }
    Ok(hits)
}

fn put_op_result(out: &mut Vec<u8>, res: &OpResult) {
    match res {
        OpResult::Inserted => out.push(0),
        OpResult::DuplicateKey => out.push(1),
        OpResult::Updated => out.push(2),
        OpResult::Deleted => out.push(3),
        OpResult::Value(None) => out.push(4),
        OpResult::Value(Some(p)) => {
            out.push(5);
            put_bytes(out, p);
        }
        OpResult::NotFound => out.push(6),
        OpResult::ScanHits(hits) => {
            out.push(7);
            put_hits(out, hits);
        }
        OpResult::Failed(e) => {
            out.push(8);
            put_bytes(out, e.as_bytes());
        }
    }
}

fn get_op_result(r: &mut Reader<'_>) -> Result<OpResult, WireError> {
    match r.u8()? {
        0 => Ok(OpResult::Inserted),
        1 => Ok(OpResult::DuplicateKey),
        2 => Ok(OpResult::Updated),
        3 => Ok(OpResult::Deleted),
        4 => Ok(OpResult::Value(None)),
        5 => Ok(OpResult::Value(Some(r.bytes("value")?))),
        6 => Ok(OpResult::NotFound),
        7 => Ok(OpResult::ScanHits(get_hits(r)?)),
        8 => Ok(OpResult::Failed(
            String::from_utf8(r.bytes("error text")?).map_err(|_| WireError::BadUtf8)?,
        )),
        t => Err(WireError::UnknownTag {
            what: "OpResult",
            tag: t,
        }),
    }
}

fn put_iam(out: &mut Vec<u8>, iam: &Option<Iam>) {
    match iam {
        None => out.push(0),
        Some(iam) => {
            out.push(1);
            out.push(iam.level);
            put_varint(out, iam.bucket);
        }
    }
}

fn get_iam(r: &mut Reader<'_>) -> Result<Option<Iam>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Iam {
            level: r.u8()?,
            bucket: r.varint()?,
        })),
        t => Err(WireError::UnknownTag {
            what: "Option<Iam>",
            tag: t,
        }),
    }
}

fn put_key_op(out: &mut Vec<u8>, op: &KeyOp) {
    match op {
        KeyOp::Add(k) => {
            out.push(0);
            put_varint(out, *k);
        }
        KeyOp::Remove(k) => {
            out.push(1);
            put_varint(out, *k);
        }
        KeyOp::Keep => out.push(2),
    }
}

fn get_key_op(r: &mut Reader<'_>) -> Result<KeyOp, WireError> {
    match r.u8()? {
        0 => Ok(KeyOp::Add(r.varint()?)),
        1 => Ok(KeyOp::Remove(r.varint()?)),
        2 => Ok(KeyOp::Keep),
        t => Err(WireError::UnknownTag {
            what: "KeyOp",
            tag: t,
        }),
    }
}

pub(crate) fn put_delta_entry(out: &mut Vec<u8>, e: &DeltaEntry) {
    put_varint(out, e.seq);
    put_varint(out, e.rank);
    put_varint(out, e.col as u64);
    put_key_op(out, &e.key_op);
    put_bytes(out, &e.delta_cell);
}

pub(crate) fn get_delta_entry(r: &mut Reader<'_>) -> Result<DeltaEntry, WireError> {
    Ok(DeltaEntry {
        seq: r.varint()?,
        rank: r.varint()?,
        col: r.varint()? as usize,
        key_op: get_key_op(r)?,
        delta_cell: r.bytes("delta cell")?,
    })
}

fn put_replay_entry(out: &mut Vec<u8>, e: &ReplayEntry) {
    put_node(out, e.client);
    put_varint(out, e.op_id);
    put_varint(out, e.key);
    put_op_result(out, &e.result);
}

fn get_replay_entry(r: &mut Reader<'_>) -> Result<ReplayEntry, WireError> {
    Ok(ReplayEntry {
        client: r.node()?,
        op_id: r.varint()?,
        key: r.varint()?,
        result: get_op_result(r)?,
    })
}

fn put_records(out: &mut Vec<u8>, records: &[Record]) {
    put_varint(out, records.len() as u64);
    for rec in records {
        put_varint(out, rec.key);
        put_bytes(out, &rec.payload);
    }
}

fn get_records(r: &mut Reader<'_>) -> Result<Vec<Record>, WireError> {
    let n = r.len("record list")?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(Record {
            key: r.varint()?,
            payload: r.bytes("record payload")?,
        });
    }
    Ok(records)
}

fn put_replay_list(out: &mut Vec<u8>, replay: &[ReplayEntry]) {
    put_varint(out, replay.len() as u64);
    for e in replay {
        put_replay_entry(out, e);
    }
}

fn get_replay_list(r: &mut Reader<'_>) -> Result<Vec<ReplayEntry>, WireError> {
    let n = r.len("replay list")?;
    let mut replay = Vec::with_capacity(n);
    for _ in 0..n {
        replay.push(get_replay_entry(r)?);
    }
    Ok(replay)
}

pub(crate) fn put_shard_content(out: &mut Vec<u8>, c: &ShardContent) {
    match c {
        ShardContent::Data {
            level,
            next_rank,
            delta_seq,
            records,
        } => {
            out.push(0);
            out.push(*level);
            put_varint(out, *next_rank);
            put_varint(out, *delta_seq);
            put_varint(out, records.len() as u64);
            for (rank, key, payload) in records {
                put_varint(out, *rank);
                put_varint(out, *key);
                put_bytes(out, payload);
            }
        }
        ShardContent::Parity { records, col_seqs } => {
            out.push(1);
            put_varint(out, records.len() as u64);
            for (rank, keys, cell) in records {
                put_varint(out, *rank);
                put_varint(out, keys.len() as u64);
                for k in keys {
                    put_opt_varint(out, k);
                }
                put_bytes(out, cell);
            }
            put_varint(out, col_seqs.len() as u64);
            for s in col_seqs {
                put_varint(out, *s);
            }
        }
    }
}

pub(crate) fn get_shard_content(r: &mut Reader<'_>) -> Result<ShardContent, WireError> {
    match r.u8()? {
        0 => {
            let level = r.u8()?;
            let next_rank: Rank = r.varint()?;
            let delta_seq = r.varint()?;
            let n = r.len("data shard records")?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push((r.varint()?, r.varint()?, r.bytes("record payload")?));
            }
            Ok(ShardContent::Data {
                level,
                next_rank,
                delta_seq,
                records,
            })
        }
        1 => {
            let n = r.len("parity shard records")?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let rank: Rank = r.varint()?;
                let kn = r.len("parity key list")?;
                let mut keys = Vec::with_capacity(kn);
                for _ in 0..kn {
                    keys.push(r.opt_varint()?);
                }
                records.push((rank, keys, r.bytes("parity cell")?));
            }
            let cn = r.len("column seq list")?;
            let mut col_seqs = Vec::with_capacity(cn);
            for _ in 0..cn {
                col_seqs.push(r.varint()?);
            }
            Ok(ShardContent::Parity { records, col_seqs })
        }
        t => Err(WireError::UnknownTag {
            what: "ShardContent",
            tag: t,
        }),
    }
}

// ----- top-level message codec -----

/// Encode a message (starts with [`WIRE_VERSION`]).
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.push(WIRE_VERSION);
    match msg {
        Msg::Do { op_id, op } => {
            out.push(tag::DO);
            put_varint(&mut out, *op_id);
            put_client_op(&mut out, op);
        }
        Msg::Req {
            op_id,
            client,
            intended,
            hops,
            kind,
        } => {
            out.push(tag::REQ);
            put_varint(&mut out, *op_id);
            put_node(&mut out, *client);
            put_varint(&mut out, *intended);
            out.push(*hops);
            put_req_kind(&mut out, kind);
        }
        Msg::Reply { op_id, result, iam } => {
            out.push(tag::REPLY);
            put_varint(&mut out, *op_id);
            put_op_result(&mut out, result);
            put_iam(&mut out, iam);
        }
        Msg::Scan {
            op_id,
            client,
            filter,
            assumed_level,
            reply_if_empty,
        } => {
            out.push(tag::SCAN);
            put_varint(&mut out, *op_id);
            put_node(&mut out, *client);
            put_filter(&mut out, filter);
            out.push(*assumed_level);
            out.push(u8::from(*reply_if_empty));
        }
        Msg::ScanReply {
            op_id,
            bucket,
            level,
            hits,
        } => {
            out.push(tag::SCAN_REPLY);
            put_varint(&mut out, *op_id);
            put_varint(&mut out, *bucket);
            out.push(*level);
            put_hits(&mut out, hits);
        }
        Msg::ParityDelta {
            group,
            entry,
            ack_to,
        } => {
            out.push(tag::PARITY_DELTA);
            put_varint(&mut out, *group);
            put_delta_entry(&mut out, entry);
            put_opt_node(&mut out, ack_to);
        }
        Msg::ParityBatch {
            group,
            entries,
            ack_to,
        } => {
            out.push(tag::PARITY_BATCH);
            put_varint(&mut out, *group);
            put_varint(&mut out, entries.len() as u64);
            for e in entries {
                put_delta_entry(&mut out, e);
            }
            put_opt_node(&mut out, ack_to);
        }
        Msg::ParityAck { col, upto } => {
            out.push(tag::PARITY_ACK);
            put_varint(&mut out, *col as u64);
            put_varint(&mut out, *upto);
        }
        Msg::ReportOverflow { bucket, size } => {
            out.push(tag::REPORT_OVERFLOW);
            put_varint(&mut out, *bucket);
            put_varint(&mut out, *size as u64);
        }
        Msg::InitData {
            bucket,
            level,
            delta_seq,
        } => {
            out.push(tag::INIT_DATA);
            put_varint(&mut out, *bucket);
            out.push(*level);
            put_varint(&mut out, *delta_seq);
        }
        Msg::InitParity { group, index, k } => {
            out.push(tag::INIT_PARITY);
            put_varint(&mut out, *group);
            put_varint(&mut out, *index as u64);
            put_varint(&mut out, *k as u64);
        }
        Msg::DoSplit {
            source,
            target,
            new_level,
        } => {
            out.push(tag::DO_SPLIT);
            put_varint(&mut out, *source);
            put_varint(&mut out, *target);
            out.push(*new_level);
        }
        Msg::SplitLoad {
            bucket,
            level,
            records,
            replay,
        } => {
            out.push(tag::SPLIT_LOAD);
            put_varint(&mut out, *bucket);
            out.push(*level);
            put_records(&mut out, records);
            put_replay_list(&mut out, replay);
        }
        Msg::Suspect {
            op_id,
            client,
            bucket,
            kind,
        } => {
            out.push(tag::SUSPECT);
            put_varint(&mut out, *op_id);
            put_node(&mut out, *client);
            put_varint(&mut out, *bucket);
            put_req_kind(&mut out, kind);
        }
        Msg::Probe { token } => {
            out.push(tag::PROBE);
            put_varint(&mut out, *token);
        }
        Msg::ProbeAck { token, bucket } => {
            out.push(tag::PROBE_ACK);
            put_varint(&mut out, *token);
            put_opt_varint(&mut out, bucket);
        }
        Msg::TransferShard { token } => {
            out.push(tag::TRANSFER_SHARD);
            put_varint(&mut out, *token);
        }
        Msg::ShardData {
            token,
            shard,
            content,
        } => {
            out.push(tag::SHARD_DATA);
            put_varint(&mut out, *token);
            put_varint(&mut out, *shard as u64);
            put_shard_content(&mut out, content);
        }
        Msg::Install {
            group,
            bucket,
            index,
            k,
            content,
            token,
        } => {
            out.push(tag::INSTALL);
            put_varint(&mut out, *group);
            put_opt_varint(&mut out, bucket);
            put_opt_varint(&mut out, &index.map(|i| i as u64));
            put_varint(&mut out, *k as u64);
            put_shard_content(&mut out, content);
            put_varint(&mut out, *token);
        }
        Msg::InstallAck { token } => {
            out.push(tag::INSTALL_ACK);
            put_varint(&mut out, *token);
        }
        Msg::FindRecord { key, token } => {
            out.push(tag::FIND_RECORD);
            put_varint(&mut out, *key);
            put_varint(&mut out, *token);
        }
        Msg::FindRecordReply { token, found } => {
            out.push(tag::FIND_RECORD_REPLY);
            put_varint(&mut out, *token);
            match found {
                None => out.push(0),
                Some((rank, keys)) => {
                    out.push(1);
                    put_varint(&mut out, *rank);
                    put_varint(&mut out, keys.len() as u64);
                    for k in keys {
                        put_opt_varint(&mut out, k);
                    }
                }
            }
        }
        Msg::ReadCell { rank, token } => {
            out.push(tag::READ_CELL);
            put_varint(&mut out, *rank);
            put_varint(&mut out, *token);
        }
        Msg::CellData { token, shard, cell } => {
            out.push(tag::CELL_DATA);
            put_varint(&mut out, *token);
            put_varint(&mut out, *shard as u64);
            put_bytes(&mut out, cell);
        }
        Msg::SplitDone { bucket } => {
            out.push(tag::SPLIT_DONE);
            put_varint(&mut out, *bucket);
        }
        Msg::ForceMerge => out.push(tag::FORCE_MERGE),
        Msg::DoMerge {
            source,
            target,
            new_level,
        } => {
            out.push(tag::DO_MERGE);
            put_varint(&mut out, *source);
            put_varint(&mut out, *target);
            out.push(*new_level);
        }
        Msg::MergeLoad {
            level,
            records,
            replay,
            final_seq,
        } => {
            out.push(tag::MERGE_LOAD);
            out.push(*level);
            put_records(&mut out, records);
            put_replay_list(&mut out, replay);
            put_varint(&mut out, *final_seq);
        }
        Msg::MergeDone { bucket, final_seq } => {
            out.push(tag::MERGE_DONE);
            put_varint(&mut out, *bucket);
            put_varint(&mut out, *final_seq);
        }
        Msg::Retire => out.push(tag::RETIRE),
        Msg::SelfReport => out.push(tag::SELF_REPORT),
        Msg::CheckOwnership { bucket, parity } => {
            out.push(tag::CHECK_OWNERSHIP);
            put_opt_varint(&mut out, bucket);
            match parity {
                None => out.push(0),
                Some((g, q)) => {
                    out.push(1);
                    put_varint(&mut out, *g);
                    put_varint(&mut out, *q as u64);
                }
            }
        }
        Msg::OwnershipAck => out.push(tag::OWNERSHIP_ACK),
        Msg::RestartReport { bucket, delta_seq } => {
            out.push(tag::RESTART_REPORT);
            put_varint(&mut out, *bucket);
            put_varint(&mut out, *delta_seq);
        }
        Msg::SuffixPull {
            group,
            col,
            from_seq,
            target,
        } => {
            out.push(tag::SUFFIX_PULL);
            put_varint(&mut out, *group);
            put_varint(&mut out, *col as u64);
            put_varint(&mut out, *from_seq);
            put_node(&mut out, *target);
        }
        Msg::DeltaSuffix {
            col,
            from_seq,
            entries,
            complete,
        } => {
            out.push(tag::DELTA_SUFFIX);
            put_varint(&mut out, *col as u64);
            put_varint(&mut out, *from_seq);
            put_varint(&mut out, entries.len() as u64);
            for e in entries {
                put_delta_entry(&mut out, e);
            }
            out.push(u8::from(*complete));
        }
        Msg::SuffixInfo {
            bucket,
            col,
            next_seq,
            covered,
            count,
            bytes,
        } => {
            out.push(tag::SUFFIX_INFO);
            put_varint(&mut out, *bucket);
            put_varint(&mut out, *col as u64);
            put_varint(&mut out, *next_seq);
            out.push(u8::from(*covered));
            put_varint(&mut out, *count);
            put_varint(&mut out, *bytes);
        }
        Msg::RestartAbort { bucket } => {
            out.push(tag::RESTART_ABORT);
            put_varint(&mut out, *bucket);
        }
        Msg::ResumeWrites { group } => {
            out.push(tag::RESUME_WRITES);
            put_varint(&mut out, *group);
        }
        Msg::CheckGroup { group } => {
            out.push(tag::CHECK_GROUP);
            put_varint(&mut out, *group);
        }
        Msg::RecoverFileState => out.push(tag::RECOVER_FILE_STATE),
        Msg::StateQuery => out.push(tag::STATE_QUERY),
        Msg::StateReply { bucket, level } => {
            out.push(tag::STATE_REPLY);
            put_varint(&mut out, *bucket);
            out.push(*level);
        }
    }
    out
}

/// Decode a message produced by [`encode_msg`]. The whole buffer must be
/// consumed.
pub fn decode_msg(buf: &[u8]) -> Result<Msg, WireError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::Version { got: version });
    }
    let t = r.u8()?;
    let msg = match t {
        tag::DO => Msg::Do {
            op_id: r.varint()?,
            op: get_client_op(&mut r)?,
        },
        tag::REQ => Msg::Req {
            op_id: r.varint()?,
            client: r.node()?,
            intended: r.varint()?,
            hops: r.u8()?,
            kind: get_req_kind(&mut r)?,
        },
        tag::REPLY => Msg::Reply {
            op_id: r.varint()?,
            result: get_op_result(&mut r)?,
            iam: get_iam(&mut r)?,
        },
        tag::SCAN => Msg::Scan {
            op_id: r.varint()?,
            client: r.node()?,
            filter: get_filter(&mut r)?,
            assumed_level: r.u8()?,
            reply_if_empty: r.u8()? != 0,
        },
        tag::SCAN_REPLY => Msg::ScanReply {
            op_id: r.varint()?,
            bucket: r.varint()?,
            level: r.u8()?,
            hits: get_hits(&mut r)?,
        },
        tag::PARITY_DELTA => Msg::ParityDelta {
            group: r.varint()?,
            entry: get_delta_entry(&mut r)?,
            ack_to: r.opt_node()?,
        },
        tag::PARITY_BATCH => {
            let group = r.varint()?;
            let n = r.len("delta batch")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_delta_entry(&mut r)?);
            }
            Msg::ParityBatch {
                group,
                entries,
                ack_to: r.opt_node()?,
            }
        }
        tag::PARITY_ACK => Msg::ParityAck {
            col: r.varint()? as usize,
            upto: r.varint()?,
        },
        tag::REPORT_OVERFLOW => Msg::ReportOverflow {
            bucket: r.varint()?,
            size: r.varint()? as usize,
        },
        tag::INIT_DATA => Msg::InitData {
            bucket: r.varint()?,
            level: r.u8()?,
            delta_seq: r.varint()?,
        },
        tag::INIT_PARITY => Msg::InitParity {
            group: r.varint()?,
            index: r.varint()? as usize,
            k: r.varint()? as usize,
        },
        tag::DO_SPLIT => Msg::DoSplit {
            source: r.varint()?,
            target: r.varint()?,
            new_level: r.u8()?,
        },
        tag::SPLIT_LOAD => Msg::SplitLoad {
            bucket: r.varint()?,
            level: r.u8()?,
            records: get_records(&mut r)?,
            replay: get_replay_list(&mut r)?,
        },
        tag::SUSPECT => Msg::Suspect {
            op_id: r.varint()?,
            client: r.node()?,
            bucket: r.varint()?,
            kind: get_req_kind(&mut r)?,
        },
        tag::PROBE => Msg::Probe { token: r.varint()? },
        tag::PROBE_ACK => Msg::ProbeAck {
            token: r.varint()?,
            bucket: r.opt_varint()?,
        },
        tag::TRANSFER_SHARD => Msg::TransferShard { token: r.varint()? },
        tag::SHARD_DATA => Msg::ShardData {
            token: r.varint()?,
            shard: r.varint()? as usize,
            content: get_shard_content(&mut r)?,
        },
        tag::INSTALL => Msg::Install {
            group: r.varint()?,
            bucket: r.opt_varint()?,
            index: r.opt_varint()?.map(|i| i as usize),
            k: r.varint()? as usize,
            content: get_shard_content(&mut r)?,
            token: r.varint()?,
        },
        tag::INSTALL_ACK => Msg::InstallAck { token: r.varint()? },
        tag::FIND_RECORD => Msg::FindRecord {
            key: r.varint()?,
            token: r.varint()?,
        },
        tag::FIND_RECORD_REPLY => {
            let token = r.varint()?;
            let found = match r.u8()? {
                0 => None,
                1 => {
                    let rank = r.varint()?;
                    let n = r.len("member key list")?;
                    let mut keys = Vec::with_capacity(n);
                    for _ in 0..n {
                        keys.push(r.opt_varint()?);
                    }
                    Some((rank, keys))
                }
                t => {
                    return Err(WireError::UnknownTag {
                        what: "Option<(Rank, keys)>",
                        tag: t,
                    })
                }
            };
            Msg::FindRecordReply { token, found }
        }
        tag::READ_CELL => Msg::ReadCell {
            rank: r.varint()?,
            token: r.varint()?,
        },
        tag::CELL_DATA => Msg::CellData {
            token: r.varint()?,
            shard: r.varint()? as usize,
            cell: r.bytes("cell")?,
        },
        tag::SPLIT_DONE => Msg::SplitDone {
            bucket: r.varint()?,
        },
        tag::FORCE_MERGE => Msg::ForceMerge,
        tag::DO_MERGE => Msg::DoMerge {
            source: r.varint()?,
            target: r.varint()?,
            new_level: r.u8()?,
        },
        tag::MERGE_LOAD => Msg::MergeLoad {
            level: r.u8()?,
            records: get_records(&mut r)?,
            replay: get_replay_list(&mut r)?,
            final_seq: r.varint()?,
        },
        tag::MERGE_DONE => Msg::MergeDone {
            bucket: r.varint()?,
            final_seq: r.varint()?,
        },
        tag::RETIRE => Msg::Retire,
        tag::SELF_REPORT => Msg::SelfReport,
        tag::CHECK_OWNERSHIP => {
            let bucket = r.opt_varint()?;
            let parity = match r.u8()? {
                0 => None,
                1 => Some((r.varint()?, r.varint()? as usize)),
                t => {
                    return Err(WireError::UnknownTag {
                        what: "Option<(group, index)>",
                        tag: t,
                    })
                }
            };
            Msg::CheckOwnership { bucket, parity }
        }
        tag::OWNERSHIP_ACK => Msg::OwnershipAck,
        tag::RESTART_REPORT => Msg::RestartReport {
            bucket: r.varint()?,
            delta_seq: r.varint()?,
        },
        tag::SUFFIX_PULL => Msg::SuffixPull {
            group: r.varint()?,
            col: varint_usize(&mut r, "suffix column")?,
            from_seq: r.varint()?,
            target: r.node()?,
        },
        tag::DELTA_SUFFIX => {
            let col = varint_usize(&mut r, "suffix column")?;
            let from_seq = r.varint()?;
            let n = r.len("delta suffix")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_delta_entry(&mut r)?);
            }
            Msg::DeltaSuffix {
                col,
                from_seq,
                entries,
                complete: r.u8()? != 0,
            }
        }
        tag::SUFFIX_INFO => Msg::SuffixInfo {
            bucket: r.varint()?,
            col: varint_usize(&mut r, "suffix column")?,
            next_seq: r.varint()?,
            covered: r.u8()? != 0,
            count: r.varint()?,
            bytes: r.varint()?,
        },
        tag::RESTART_ABORT => Msg::RestartAbort {
            bucket: r.varint()?,
        },
        tag::RESUME_WRITES => Msg::ResumeWrites { group: r.varint()? },
        tag::CHECK_GROUP => Msg::CheckGroup { group: r.varint()? },
        tag::RECOVER_FILE_STATE => Msg::RecoverFileState,
        tag::STATE_QUERY => Msg::StateQuery,
        tag::STATE_REPLY => Msg::StateReply {
            bucket: r.varint()?,
            level: r.u8()?,
        },
        t => {
            return Err(WireError::UnknownTag {
                what: "Msg",
                tag: t,
            })
        }
    };
    r.finish()?;
    Ok(msg)
}

// ----- coordinator events -----

/// Encode a [`CoordEvent`] (versioned, tag from [`etag`]).
///
/// Events cross the wire when a driver observes a remotely-hosted
/// coordinator, and the exhaustiveness lint holds this codec to the same
/// rule as [`encode_msg`]: adding a variant without an arm here fails CI.
pub fn encode_coord_event(ev: &CoordEvent) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION];
    match ev {
        CoordEvent::Split {
            source,
            target,
            buckets,
        } => {
            out.push(etag::SPLIT);
            put_varint(&mut out, *source);
            put_varint(&mut out, *target);
            put_varint(&mut out, *buckets);
        }
        CoordEvent::KIncreased { k } => {
            out.push(etag::K_INCREASED);
            put_varint(&mut out, *k as u64);
        }
        CoordEvent::GroupUpgraded { group, k } => {
            out.push(etag::GROUP_UPGRADED);
            put_varint(&mut out, *group);
            put_varint(&mut out, *k as u64);
        }
        CoordEvent::FailureDetected { group, shards } => {
            out.push(etag::FAILURE_DETECTED);
            put_varint(&mut out, *group);
            put_varint(&mut out, shards.len() as u64);
            for s in shards {
                put_varint(&mut out, *s as u64);
            }
        }
        CoordEvent::GroupRecovered { group, shards } => {
            out.push(etag::GROUP_RECOVERED);
            put_varint(&mut out, *group);
            put_varint(&mut out, shards.len() as u64);
            for s in shards {
                put_varint(&mut out, *s as u64);
            }
        }
        CoordEvent::GroupUnrecoverable { group, failed } => {
            out.push(etag::GROUP_UNRECOVERABLE);
            put_varint(&mut out, *group);
            put_varint(&mut out, *failed as u64);
        }
        CoordEvent::Merged {
            source,
            target,
            buckets,
        } => {
            out.push(etag::MERGED);
            put_varint(&mut out, *source);
            put_varint(&mut out, *target);
            put_varint(&mut out, *buckets);
        }
        CoordEvent::StateRecovered { n, i } => {
            out.push(etag::STATE_RECOVERED);
            put_varint(&mut out, *n);
            out.push(*i);
        }
        CoordEvent::RecoveryStalled { group, needed } => {
            out.push(etag::RECOVERY_STALLED);
            put_varint(&mut out, *group);
            put_varint(&mut out, *needed as u64);
        }
        CoordEvent::InvariantViolated { context } => {
            out.push(etag::INVARIANT_VIOLATED);
            put_bytes(&mut out, context.as_bytes());
        }
        CoordEvent::BucketRestarted { bucket, suffix_len } => {
            out.push(etag::BUCKET_RESTARTED);
            put_varint(&mut out, *bucket);
            put_varint(&mut out, *suffix_len);
        }
    }
    out
}

/// Decode a usize-valued varint, rejecting values that do not fit.
fn varint_usize(r: &mut Reader<'_>, what: &'static str) -> Result<usize, WireError> {
    let v = r.varint()?;
    usize::try_from(v).map_err(|_| WireError::Oversized { what, len: v })
}

/// Decode a shard-index list (count bounded against the remaining bytes).
fn shard_list(r: &mut Reader<'_>) -> Result<Vec<usize>, WireError> {
    let n = r.len("event shard list")?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(varint_usize(r, "event shard index")?);
    }
    Ok(shards)
}

/// Decode a [`CoordEvent`]; rejects truncated or trailing-garbage buffers.
pub fn decode_coord_event(buf: &[u8]) -> Result<CoordEvent, WireError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::Version { got: version });
    }
    let t = r.u8()?;
    let ev = match t {
        etag::SPLIT => CoordEvent::Split {
            source: r.varint()?,
            target: r.varint()?,
            buckets: r.varint()?,
        },
        etag::K_INCREASED => CoordEvent::KIncreased {
            k: varint_usize(&mut r, "event k")?,
        },
        etag::GROUP_UPGRADED => CoordEvent::GroupUpgraded {
            group: r.varint()?,
            k: varint_usize(&mut r, "event k")?,
        },
        etag::FAILURE_DETECTED => CoordEvent::FailureDetected {
            group: r.varint()?,
            shards: shard_list(&mut r)?,
        },
        etag::GROUP_RECOVERED => CoordEvent::GroupRecovered {
            group: r.varint()?,
            shards: shard_list(&mut r)?,
        },
        etag::GROUP_UNRECOVERABLE => CoordEvent::GroupUnrecoverable {
            group: r.varint()?,
            failed: varint_usize(&mut r, "event failed count")?,
        },
        etag::MERGED => CoordEvent::Merged {
            source: r.varint()?,
            target: r.varint()?,
            buckets: r.varint()?,
        },
        etag::STATE_RECOVERED => CoordEvent::StateRecovered {
            n: r.varint()?,
            i: r.u8()?,
        },
        etag::RECOVERY_STALLED => CoordEvent::RecoveryStalled {
            group: r.varint()?,
            needed: varint_usize(&mut r, "event needed count")?,
        },
        etag::INVARIANT_VIOLATED => CoordEvent::InvariantViolated {
            context: String::from_utf8(r.bytes("event context")?)
                .map_err(|_| WireError::BadUtf8)?,
        },
        etag::BUCKET_RESTARTED => CoordEvent::BucketRestarted {
            bucket: r.varint()?,
            suffix_len: r.varint()?,
        },
        _ => {
            return Err(WireError::UnknownTag {
                what: "CoordEvent",
                tag: t,
            })
        }
    };
    r.finish()?;
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        assert_eq!(
            Reader::new(&buf).varint().unwrap_err(),
            WireError::VarintOverflow
        );
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut buf = encode_msg(&Msg::StateQuery);
        buf[0] = 99;
        assert_eq!(
            decode_msg(&buf).unwrap_err(),
            WireError::Version { got: 99 }
        );
    }

    #[test]
    fn unknown_msg_tag_rejected() {
        let buf = [WIRE_VERSION, 200];
        assert_eq!(
            decode_msg(&buf).unwrap_err(),
            WireError::UnknownTag {
                what: "Msg",
                tag: 200
            }
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode_msg(&Msg::StateQuery);
        buf.push(0);
        assert_eq!(
            decode_msg(&buf).unwrap_err(),
            WireError::Trailing { extra: 1 }
        );
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // CellData with a cell length claim beyond MAX_LEN.
        let mut buf = vec![WIRE_VERSION, tag::CELL_DATA];
        put_varint(&mut buf, 7); // token
        put_varint(&mut buf, 0); // shard
        put_varint(&mut buf, MAX_LEN + 1); // absurd cell length
        assert_eq!(
            decode_msg(&buf).unwrap_err(),
            WireError::Oversized {
                what: "cell",
                len: MAX_LEN + 1
            }
        );
    }

    #[test]
    fn length_beyond_remaining_is_truncation() {
        let mut buf = vec![WIRE_VERSION, tag::CELL_DATA];
        put_varint(&mut buf, 7);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 1000); // claims 1000 bytes, none follow
        assert_eq!(decode_msg(&buf).unwrap_err(), WireError::Truncated);
    }

    /// Adversarial frame: a nested list-of-lists where the *outer* count is
    /// plausible but an *inner* length claims more than the frame holds.
    /// The decoder must reject before allocating, not over-allocate or
    /// panic.
    #[test]
    fn nested_inner_length_is_bounded_by_remaining_bytes() {
        // FindRecordReply: token, presence byte, rank, then a key list whose
        // claimed count dwarfs the actual frame.
        let mut buf = vec![WIRE_VERSION, tag::FIND_RECORD_REPLY];
        put_varint(&mut buf, 9); // token
        buf.push(1); // found = Some
        put_varint(&mut buf, 1); // rank
        put_varint(&mut buf, 1 << 20); // key count: under MAX_LEN, over frame
        assert_eq!(decode_msg(&buf).unwrap_err(), WireError::Truncated);
    }

    /// A huge claimed element count with a tiny frame must fail the
    /// remaining-bytes bound even when it is under MAX_LEN.
    #[test]
    fn batch_count_under_cap_but_over_frame_is_truncation() {
        let mut buf = vec![WIRE_VERSION, tag::PARITY_BATCH];
        put_varint(&mut buf, 3); // group
        put_varint(&mut buf, MAX_LEN); // exactly the cap, frame is ~4 bytes
        assert_eq!(decode_msg(&buf).unwrap_err(), WireError::Truncated);
    }

    /// Truncating a well-formed encoding at every prefix must yield a typed
    /// error — never a panic and never a bogus success.
    #[test]
    fn every_prefix_of_a_real_message_fails_cleanly() {
        let buf = encode_msg(&Msg::FindRecordReply {
            token: 3,
            found: Some((4, vec![Some(7), None, Some(11)])),
        });
        for cut in 0..buf.len() {
            assert!(
                decode_msg(&buf[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        assert!(decode_msg(&buf).is_ok());
    }

    #[test]
    fn restart_suffix_messages_roundtrip() {
        let entry = DeltaEntry {
            seq: 9,
            rank: 4,
            col: 2,
            key_op: KeyOp::Keep,
            delta_cell: vec![1, 2, 3],
        };
        let msgs = [
            Msg::RestartReport {
                bucket: 6,
                delta_seq: 41,
            },
            Msg::SuffixPull {
                group: 1,
                col: 2,
                from_seq: 41,
                target: lhrs_sim::NodeId(9),
            },
            Msg::DeltaSuffix {
                col: 2,
                from_seq: 41,
                entries: vec![entry.clone(), entry],
                complete: true,
            },
            Msg::DeltaSuffix {
                col: 0,
                from_seq: 0,
                entries: Vec::new(),
                complete: false,
            },
            Msg::SuffixInfo {
                bucket: 6,
                col: 2,
                next_seq: 43,
                covered: true,
                count: 2,
                bytes: 6,
            },
            Msg::RestartAbort { bucket: 6 },
            Msg::ResumeWrites { group: 3 },
        ];
        for m in &msgs {
            let buf = encode_msg(m);
            assert_eq!(&decode_msg(&buf).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn coord_event_roundtrip_all_variants() {
        let events = [
            CoordEvent::Split {
                source: 0,
                target: 8,
                buckets: 9,
            },
            CoordEvent::KIncreased { k: 2 },
            CoordEvent::GroupUpgraded { group: 1, k: 2 },
            CoordEvent::FailureDetected {
                group: 3,
                shards: vec![0, 5, 2],
            },
            CoordEvent::GroupRecovered {
                group: 3,
                shards: vec![1],
            },
            CoordEvent::GroupUnrecoverable {
                group: 7,
                failed: 4,
            },
            CoordEvent::Merged {
                source: 4,
                target: 9,
                buckets: 9,
            },
            CoordEvent::StateRecovered { n: 77, i: 6 },
            CoordEvent::RecoveryStalled {
                group: 2,
                needed: 3,
            },
            CoordEvent::InvariantViolated {
                context: "find-record reply missing the searched key".to_string(),
            },
            CoordEvent::BucketRestarted {
                bucket: 5,
                suffix_len: 17,
            },
        ];
        for ev in &events {
            let buf = encode_coord_event(ev);
            assert_eq!(&decode_coord_event(&buf).unwrap(), ev, "{ev:?}");
        }
    }

    #[test]
    fn coord_event_rejects_unknown_tag_truncation_and_trailing() {
        assert_eq!(
            decode_coord_event(&[WIRE_VERSION, 200]).unwrap_err(),
            WireError::UnknownTag {
                what: "CoordEvent",
                tag: 200
            }
        );
        let buf = encode_coord_event(&CoordEvent::KIncreased { k: 300 });
        assert!(decode_coord_event(&buf[..buf.len() - 1]).is_err());
        let mut buf = encode_coord_event(&CoordEvent::StateRecovered { n: 1, i: 2 });
        buf.push(0);
        assert_eq!(
            decode_coord_event(&buf).unwrap_err(),
            WireError::Trailing { extra: 1 }
        );
        // A shard list claiming more elements than bytes remain.
        let mut buf = vec![WIRE_VERSION, etag::FAILURE_DETECTED];
        put_varint(&mut buf, 3); // group
        put_varint(&mut buf, 1 << 20); // absurd shard count
        assert_eq!(decode_coord_event(&buf).unwrap_err(), WireError::Truncated);
        // Invalid UTF-8 in the context string.
        let mut buf = vec![WIRE_VERSION, etag::INVARIANT_VIOLATED];
        put_bytes(&mut buf, &[0xff, 0xfe]);
        assert_eq!(decode_coord_event(&buf).unwrap_err(), WireError::BadUtf8);
    }
}
