//! The durable-bucket seam: a [`BucketStore`] trait buckets log committed
//! operations to, plus the replay path that rebuilds a bucket from its
//! local store after a process crash.
//!
//! The paper's LH\*RS multicomputer is RAM-only: a killed bucket is gone
//! and costs a full k-out-of-m+k Reed–Solomon rebuild over the network.
//! The cheapest "repair symbol" of all, though, is the node's own disk
//! (the locality argument of the storage-codes literature). With a store
//! attached, a restarting bucket replays its snapshot + write-ahead log
//! locally and only fetches the short Δ-suffix it missed from its parity
//! group — the coordinator falls back to the full rebuild when the disk
//! is lost or the suffix has been truncated away.
//!
//! This module is deliberately I/O-free: the file-backed implementation
//! lives in the zero-dep `lhrs-wal` crate, and [`MemStore`] provides a
//! deterministic in-memory "disk" for the simulator drills.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use lhrs_sim::NodeId;

use crate::data_bucket::DataBucket;
use crate::msg::{DeltaEntry, ShardContent};
use crate::node::Node;
use crate::parity_bucket::ParityBucket;
use crate::registry::SharedHandle;
use crate::wire::{self, Reader};
use crate::{Key, Rank};

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying medium failed (filesystem error, out of space, ...).
    Io(String),
    /// The stored bytes are not a valid snapshot/log (decode failure past
    /// the CRC layer, missing snapshot, wrong role). The store cannot seed
    /// a bucket; recovery must fall back to the RS rebuild.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(why) => write!(f, "store I/O error: {why}"),
            StoreError::Corrupt(why) => write!(f, "store corrupt: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What the replay found at the end of the log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TailState {
    /// The log ended exactly at a record boundary.
    #[default]
    Clean,
    /// The last record was cut short mid-write (torn write): treated as a
    /// clean EOF, the partial record is discarded.
    Torn {
        /// Bytes of the partial record dropped.
        bytes_dropped: u64,
    },
    /// A record failed its integrity check; the clean prefix before it was
    /// replayed, everything from the bad record on was discarded.
    Corrupt {
        /// What failed (CRC mismatch, oversized length claim, ...).
        context: String,
        /// Bytes discarded from the bad record to the end of the log.
        bytes_dropped: u64,
    },
}

/// Result of [`BucketStore::replay`]: the latest snapshot plus every op
/// logged after it, in append order.
#[derive(Debug, Default)]
pub struct Replay {
    /// The latest snapshot state, if one was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// Ops appended after that snapshot, oldest first.
    pub ops: Vec<Vec<u8>>,
    /// What the end of the log looked like.
    pub tail: TailState,
}

/// A per-bucket durable store: append-only op log + latest-state snapshot.
///
/// Implementations must make `snapshot` atomic (write-tmp + rename in the
/// file-backed store) and must treat a torn log tail as clean EOF on
/// replay — a crash mid-append may never poison the prefix.
pub trait BucketStore {
    /// Append one encoded op to the log.
    fn append(&mut self, op: &[u8]) -> Result<(), StoreError>;
    /// Atomically replace the snapshot with `state` and truncate the log.
    fn snapshot(&mut self, state: &[u8]) -> Result<(), StoreError>;
    /// Read back the snapshot and the logged ops.
    fn replay(&mut self) -> Result<Replay, StoreError>;
    /// Erase everything (bucket retired or reassigned).
    fn reset(&mut self) -> Result<(), StoreError>;
    /// Ops appended since the last snapshot (drives the snapshot policy).
    fn appended_since_snapshot(&self) -> u64;
    /// Current log size in bytes (post-snapshot suffix only).
    fn wal_bytes(&self) -> u64;
    /// Flush buffered appends to the medium (fsync-policy hook; a no-op
    /// for memory-backed stores).
    fn sync(&mut self) -> Result<(), StoreError>;
    /// Appends buffered since the last durability point — what the next
    /// [`BucketStore::sync`] would make durable at once. Feeds the host's
    /// group-commit accounting; memory-backed stores report 0.
    fn unsynced_ops(&self) -> u64 {
        0
    }
}

/// The durable identity a store is keyed by: logical shard, not node —
/// the disk follows the bucket through restarts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StoreId {
    /// Data bucket `bucket`.
    Data {
        /// The bucket number.
        bucket: u64,
    },
    /// Parity column `index` of bucket group `group`.
    Parity {
        /// The bucket group.
        group: u64,
        /// The parity column index.
        index: usize,
    },
}

/// Builds (or declines to build) a store for a shard landing on a node.
/// Returning `None` models a node without a usable disk.
pub type StoreFactory = Rc<dyn Fn(NodeId, &StoreId) -> Option<Box<dyn BucketStore>>>;

// ----- op codec -----

/// One logged bucket operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Data bucket: a record was inserted or updated at `rank`.
    Set {
        /// The record's rank.
        rank: Rank,
        /// The record's key.
        key: Key,
        /// The committed payload.
        payload: Vec<u8>,
        /// The bucket's Δ-stream position *after* this commit.
        delta_seq: u64,
    },
    /// Data bucket: the record at `rank` was deleted.
    Del {
        /// The deleted record's rank.
        rank: Rank,
        /// Its key.
        key: Key,
        /// The bucket's Δ-stream position *after* this commit.
        delta_seq: u64,
    },
    /// Parity bucket: a Δ-commit was applied in column order.
    Delta(DeltaEntry),
}

const OP_SET: u8 = 1;
const OP_DEL: u8 = 2;
const OP_DELTA: u8 = 3;

/// Encode a [`WalOp`] (integrity framing is the store's job, not ours).
pub fn encode_op(op: &WalOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match op {
        WalOp::Set {
            rank,
            key,
            payload,
            delta_seq,
        } => {
            out.push(OP_SET);
            wire::put_varint(&mut out, *rank);
            wire::put_varint(&mut out, *key);
            wire::put_bytes(&mut out, payload);
            wire::put_varint(&mut out, *delta_seq);
        }
        WalOp::Del {
            rank,
            key,
            delta_seq,
        } => {
            out.push(OP_DEL);
            wire::put_varint(&mut out, *rank);
            wire::put_varint(&mut out, *key);
            wire::put_varint(&mut out, *delta_seq);
        }
        WalOp::Delta(entry) => {
            out.push(OP_DELTA);
            wire::put_delta_entry(&mut out, entry);
        }
    }
    out
}

/// Decode a [`WalOp`]; the whole buffer must be consumed.
pub fn decode_op(buf: &[u8]) -> Result<WalOp, StoreError> {
    let corrupt = |e: wire::WireError| StoreError::Corrupt(format!("wal op: {e}"));
    let mut r = Reader::new(buf);
    let op = match r.u8().map_err(corrupt)? {
        OP_SET => WalOp::Set {
            rank: r.varint().map_err(corrupt)?,
            key: r.varint().map_err(corrupt)?,
            payload: r.bytes("wal payload").map_err(corrupt)?,
            delta_seq: r.varint().map_err(corrupt)?,
        },
        OP_DEL => WalOp::Del {
            rank: r.varint().map_err(corrupt)?,
            key: r.varint().map_err(corrupt)?,
            delta_seq: r.varint().map_err(corrupt)?,
        },
        OP_DELTA => WalOp::Delta(wire::get_delta_entry(&mut r).map_err(corrupt)?),
        t => return Err(StoreError::Corrupt(format!("unknown wal op tag {t}"))),
    };
    r.finish().map_err(corrupt)?;
    Ok(op)
}

// ----- snapshot codec -----

const SNAP_VERSION: u8 = 1;
const SNAP_DATA: u8 = 0;
const SNAP_PARITY: u8 = 1;

/// Encode a data bucket's snapshot state.
pub(crate) fn encode_data_snapshot(bucket: u64, content: &ShardContent) -> Vec<u8> {
    let mut out = vec![SNAP_VERSION, SNAP_DATA];
    wire::put_varint(&mut out, bucket);
    wire::put_shard_content(&mut out, content);
    out
}

/// Encode a parity bucket's snapshot state.
pub(crate) fn encode_parity_snapshot(
    group: u64,
    index: usize,
    k: usize,
    content: &ShardContent,
) -> Vec<u8> {
    let mut out = vec![SNAP_VERSION, SNAP_PARITY];
    wire::put_varint(&mut out, group);
    wire::put_varint(&mut out, index as u64);
    wire::put_varint(&mut out, k as u64);
    wire::put_shard_content(&mut out, content);
    out
}

/// A decoded bucket snapshot.
enum Snapshot {
    Data {
        bucket: u64,
        content: ShardContent,
    },
    Parity {
        group: u64,
        index: usize,
        k: usize,
        content: ShardContent,
    },
}

fn decode_snapshot(buf: &[u8]) -> Result<Snapshot, StoreError> {
    let corrupt = |e: wire::WireError| StoreError::Corrupt(format!("snapshot: {e}"));
    let usize_of = |v: u64| {
        usize::try_from(v).map_err(|_| StoreError::Corrupt(format!("snapshot index {v} overflows")))
    };
    let mut r = Reader::new(buf);
    let version = r.u8().map_err(corrupt)?;
    if version != SNAP_VERSION {
        return Err(StoreError::Corrupt(format!(
            "snapshot version {version} (expected {SNAP_VERSION})"
        )));
    }
    let snap = match r.u8().map_err(corrupt)? {
        SNAP_DATA => Snapshot::Data {
            bucket: r.varint().map_err(corrupt)?,
            content: wire::get_shard_content(&mut r).map_err(corrupt)?,
        },
        SNAP_PARITY => Snapshot::Parity {
            group: r.varint().map_err(corrupt)?,
            index: usize_of(r.varint().map_err(corrupt)?)?,
            k: usize_of(r.varint().map_err(corrupt)?)?,
            content: wire::get_shard_content(&mut r).map_err(corrupt)?,
        },
        t => return Err(StoreError::Corrupt(format!("unknown snapshot role {t}"))),
    };
    r.finish().map_err(corrupt)?;
    Ok(snap)
}

// ----- recovery -----

/// A bucket rebuilt from its local store by [`recover`].
pub struct Recovered {
    /// The reconstructed node, store re-attached, flagged to send
    /// [`crate::msg::Msg::RestartReport`] on its boot `SelfReport`.
    pub node: Node,
    /// The durable identity the store claimed.
    pub store_id: StoreId,
    /// Logged ops replayed on top of the snapshot.
    pub ops_replayed: u64,
    /// Bytes of logged ops replayed.
    pub bytes_replayed: u64,
    /// What the log tail looked like.
    pub tail: TailState,
}

/// Rebuild a bucket from its durable store: decode the snapshot, fold the
/// logged op suffix over it, and hand back a node ready to be hosted.
///
/// A torn or corrupt log *tail* is survivable (the clean prefix is state
/// the rest of the file may have moved past anyway — the Δ-suffix
/// handshake reconciles it). A missing or undecodable *snapshot* is not:
/// that store cannot seed a bucket and the caller must fall back to the
/// full RS rebuild.
pub fn recover(
    shared: &SharedHandle,
    mut store: Box<dyn BucketStore>,
) -> Result<Recovered, StoreError> {
    let replay = store.replay()?;
    let snap_buf = replay
        .snapshot
        .ok_or_else(|| StoreError::Corrupt("store has no snapshot".into()))?;
    let mut ops_replayed = 0u64;
    let mut bytes_replayed = 0u64;
    let node = match decode_snapshot(&snap_buf)? {
        Snapshot::Data { bucket, content } => {
            let ShardContent::Data {
                level,
                next_rank,
                delta_seq,
                records,
            } = content
            else {
                return Err(StoreError::Corrupt(
                    "data snapshot holds parity content".into(),
                ));
            };
            let mut map: BTreeMap<Rank, (Key, Vec<u8>)> = records
                .into_iter()
                .map(|(rank, key, payload)| (rank, (key, payload)))
                .collect();
            let mut next_rank = next_rank;
            let mut delta_seq = delta_seq;
            for buf in &replay.ops {
                match decode_op(buf)? {
                    WalOp::Set {
                        rank,
                        key,
                        payload,
                        delta_seq: seq,
                    } => {
                        map.insert(rank, (key, payload));
                        next_rank = next_rank.max(rank.saturating_add(1));
                        delta_seq = delta_seq.max(seq);
                    }
                    WalOp::Del {
                        rank,
                        delta_seq: seq,
                        ..
                    } => {
                        map.remove(&rank);
                        delta_seq = delta_seq.max(seq);
                    }
                    WalOp::Delta(_) => {
                        return Err(StoreError::Corrupt(
                            "data store logged a parity delta".into(),
                        ));
                    }
                }
                ops_replayed += 1;
                bytes_replayed += buf.len() as u64;
            }
            let records: Vec<(Rank, Key, Vec<u8>)> = map
                .into_iter()
                .map(|(rank, (key, payload))| (rank, key, payload))
                .collect();
            let mut d = DataBucket::from_content(
                shared.clone(),
                bucket,
                level,
                next_rank,
                delta_seq,
                records,
            );
            d.mark_restarted();
            d.attach_store(store);
            d.snapshot_now();
            Node::Data(d)
        }
        Snapshot::Parity {
            group,
            index,
            k,
            content,
        } => {
            let ShardContent::Parity { records, col_seqs } = content else {
                return Err(StoreError::Corrupt(
                    "parity snapshot holds data content".into(),
                ));
            };
            let mut p =
                ParityBucket::from_content(shared.clone(), group, index, k, records, col_seqs);
            for buf in &replay.ops {
                match decode_op(buf)? {
                    WalOp::Delta(entry) => p.replay_entry(entry),
                    WalOp::Set { .. } | WalOp::Del { .. } => {
                        return Err(StoreError::Corrupt("parity store logged a data op".into()));
                    }
                }
                ops_replayed += 1;
                bytes_replayed += buf.len() as u64;
            }
            p.attach_store(store);
            p.snapshot_now();
            Node::Parity(p)
        }
    };
    let store_id = match &node {
        Node::Data(d) => StoreId::Data { bucket: d.bucket },
        Node::Parity(p) => StoreId::Parity {
            group: p.group,
            index: p.index,
        },
        _ => {
            return Err(StoreError::Corrupt(
                "recovered node has no storage role".into(),
            ))
        }
    };
    Ok(Recovered {
        node,
        store_id,
        ops_replayed,
        bytes_replayed,
        tail: replay.tail,
    })
}

// ----- in-memory store for the simulator drills -----

#[derive(Default)]
struct MemInner {
    snapshot: Option<Vec<u8>>,
    ops: Vec<Vec<u8>>,
    bytes: u64,
    /// Fault injection: every append/snapshot fails (a dying disk).
    failing: bool,
}

/// A handle to one simulated "disk": survives the bucket's crash so a
/// drill can reopen it, chop its tail, or destroy it.
#[derive(Clone, Default)]
pub struct MemDisk {
    inner: Rc<RefCell<MemInner>>,
}

impl MemDisk {
    /// Number of ops currently logged after the snapshot.
    pub fn ops_len(&self) -> usize {
        self.inner.borrow().ops.len()
    }

    /// Keep only the first `keep` logged ops (simulates losing the log
    /// tail — e.g. an unsynced page cache at power loss).
    pub fn truncate_ops(&self, keep: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.ops.truncate(keep);
        inner.bytes = inner.ops.iter().map(|o| o.len() as u64).sum();
    }

    /// Make every subsequent append/snapshot fail (a dying disk — the
    /// store-poisoning drill). `reset` still works: erasing a bad disk's
    /// metadata is modelled as always possible.
    pub fn fail_writes(&self, failing: bool) {
        self.inner.borrow_mut().failing = failing;
    }

    /// Whether the disk currently holds a snapshot (poisoning erases it).
    pub fn has_snapshot(&self) -> bool {
        self.inner.borrow().snapshot.is_some()
    }

    /// Open a store view onto this disk.
    pub fn open(&self) -> Box<dyn BucketStore> {
        Box::new(MemStore { disk: self.clone() })
    }
}

/// [`BucketStore`] over a [`MemDisk`].
pub struct MemStore {
    disk: MemDisk,
}

impl BucketStore for MemStore {
    fn append(&mut self, op: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.disk.inner.borrow_mut();
        if inner.failing {
            return Err(StoreError::Io("injected append failure".into()));
        }
        inner.bytes += op.len() as u64;
        inner.ops.push(op.to_vec());
        Ok(())
    }

    fn snapshot(&mut self, state: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.disk.inner.borrow_mut();
        if inner.failing {
            return Err(StoreError::Io("injected snapshot failure".into()));
        }
        inner.snapshot = Some(state.to_vec());
        inner.ops.clear();
        inner.bytes = 0;
        Ok(())
    }

    fn replay(&mut self) -> Result<Replay, StoreError> {
        let inner = self.disk.inner.borrow();
        Ok(Replay {
            snapshot: inner.snapshot.clone(),
            ops: inner.ops.clone(),
            tail: TailState::Clean,
        })
    }

    fn reset(&mut self) -> Result<(), StoreError> {
        let mut inner = self.disk.inner.borrow_mut();
        inner.snapshot = None;
        inner.ops.clear();
        inner.bytes = 0;
        Ok(())
    }

    fn appended_since_snapshot(&self) -> u64 {
        self.disk.inner.borrow().ops.len() as u64
    }

    fn wal_bytes(&self) -> u64 {
        self.disk.inner.borrow().bytes
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// A fleet of [`MemDisk`]s keyed by [`StoreId`], with a [`StoreFactory`]
/// view for [`crate::registry::Shared::set_store_factory`]. Disks follow
/// the logical shard, not the node, exactly like a reattached volume.
#[derive(Clone, Default)]
pub struct MemHub {
    disks: Rc<RefCell<HashMap<StoreId, MemDisk>>>,
    dead: Rc<RefCell<HashSet<StoreId>>>,
}

impl MemHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The factory view: creates a disk per store id on first use, and
    /// declines for ids that were [`MemHub::destroy`]ed.
    pub fn factory(&self) -> StoreFactory {
        let hub = self.clone();
        Rc::new(move |_node, id| {
            if hub.dead.borrow().contains(id) {
                return None;
            }
            let disk = hub
                .disks
                .borrow_mut()
                .entry(id.clone())
                .or_default()
                .clone();
            Some(disk.open())
        })
    }

    /// The disk behind `id`, if one was ever created.
    pub fn disk(&self, id: &StoreId) -> Option<MemDisk> {
        self.disks.borrow().get(id).cloned()
    }

    /// Destroy the disk behind `id`: its contents are gone and the factory
    /// declines to recreate it (the disk-lost drill arm).
    pub fn destroy(&self, id: &StoreId) {
        self.disks.borrow_mut().remove(id);
        self.dead.borrow_mut().insert(id.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::KeyOp;

    #[test]
    fn wal_op_roundtrip() {
        let ops = [
            WalOp::Set {
                rank: 3,
                key: 77,
                payload: vec![1, 2, 3],
                delta_seq: 9,
            },
            WalOp::Del {
                rank: 3,
                key: 77,
                delta_seq: 10,
            },
            WalOp::Delta(DeltaEntry {
                seq: 4,
                rank: 1,
                col: 2,
                key_op: KeyOp::Add(5),
                delta_cell: vec![0, 9],
            }),
        ];
        for op in &ops {
            assert_eq!(&decode_op(&encode_op(op)).unwrap(), op, "{op:?}");
        }
    }

    #[test]
    fn decode_op_rejects_garbage_and_trailing() {
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[99]).is_err());
        let mut buf = encode_op(&WalOp::Del {
            rank: 0,
            key: 0,
            delta_seq: 0,
        });
        buf.push(7);
        assert!(decode_op(&buf).is_err());
    }

    #[test]
    fn snapshot_codec_rejects_bad_version_and_role() {
        let content = ShardContent::Data {
            level: 0,
            next_rank: 0,
            delta_seq: 0,
            records: Vec::new(),
        };
        let mut buf = encode_data_snapshot(3, &content);
        assert!(decode_snapshot(&buf).is_ok());
        buf[0] = 9;
        assert!(matches!(decode_snapshot(&buf), Err(StoreError::Corrupt(_))));
        buf[0] = SNAP_VERSION;
        buf[1] = 7;
        assert!(decode_snapshot(&buf).is_err());
    }

    #[test]
    fn mem_disk_survives_and_truncates() {
        let hub = MemHub::new();
        let id = StoreId::Data { bucket: 0 };
        let factory = hub.factory();
        let mut store = factory(NodeId(1), &id).unwrap();
        store.snapshot(b"snap").unwrap();
        store.append(b"a").unwrap();
        store.append(b"bb").unwrap();
        assert_eq!(store.appended_since_snapshot(), 2);
        assert_eq!(store.wal_bytes(), 3);
        drop(store);

        // Chop the tail, reopen "after the crash".
        hub.disk(&id).unwrap().truncate_ops(1);
        let mut store = factory(NodeId(2), &id).unwrap();
        let rep = store.replay().unwrap();
        assert_eq!(rep.snapshot.as_deref(), Some(&b"snap"[..]));
        assert_eq!(rep.ops, vec![b"a".to_vec()]);
        assert_eq!(rep.tail, TailState::Clean);

        hub.destroy(&id);
        assert!(factory(NodeId(2), &id).is_none());
    }
}
