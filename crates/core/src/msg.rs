//! The LH\*RS wire protocol: every message exchanged between clients, data
//! buckets, parity buckets, and the coordinator, with per-kind accounting
//! labels matching the cost tables of the evaluation.

use lhrs_sim::NodeId;

use crate::record::Record;
use crate::{Key, Rank};

/// Client-side operation identifier, assigned by the driver.
pub type OpId = u64;

/// An operation submitted by the application to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Insert a new record.
    Insert {
        /// Record key.
        key: Key,
        /// Record payload.
        payload: Vec<u8>,
    },
    /// Key search.
    Lookup {
        /// Record key.
        key: Key,
    },
    /// Replace the payload of an existing record.
    Update {
        /// Record key.
        key: Key,
        /// New payload.
        payload: Vec<u8>,
    },
    /// Delete a record.
    Delete {
        /// Record key.
        key: Key,
    },
    /// Parallel scan of all buckets with a server-side filter.
    Scan {
        /// Filter evaluated at every bucket.
        filter: FilterSpec,
    },
}

/// Server-side scan filter (a restricted predicate language, since closures
/// cannot cross simulated nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterSpec {
    /// Match every record.
    All,
    /// Match records whose payload contains the given byte string.
    PayloadContains(Vec<u8>),
    /// Match records with key in `[lo, hi)`.
    KeyRange(Key, Key),
}

impl FilterSpec {
    /// Evaluate the filter against a record.
    pub fn matches(&self, key: Key, payload: &[u8]) -> bool {
        match self {
            FilterSpec::All => true,
            FilterSpec::PayloadContains(needle) => {
                !needle.is_empty() && payload.windows(needle.len()).any(|w| w == &needle[..])
                    || needle.is_empty()
            }
            FilterSpec::KeyRange(lo, hi) => (*lo..*hi).contains(&key),
        }
    }
}

/// Completion value returned to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Insert committed.
    Inserted,
    /// Insert rejected: the key already exists.
    DuplicateKey,
    /// Update committed.
    Updated,
    /// Delete committed.
    Deleted,
    /// Lookup result: the payload, or `None` for an unsuccessful search.
    Value(Option<Vec<u8>>),
    /// Update/delete of a non-existent key.
    NotFound,
    /// Scan result: all matching records.
    ScanHits(Vec<(Key, Vec<u8>)>),
    /// The operation failed permanently (e.g. unrecoverable group).
    Failed(String),
}

/// The request kinds servers process (the key-specific subset of
/// [`ClientOp`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqKind {
    /// Insert a record.
    Insert(Key, Vec<u8>),
    /// Key search.
    Lookup(Key),
    /// Update a record in place.
    Update(Key, Vec<u8>),
    /// Delete a record.
    Delete(Key),
}

impl ReqKind {
    /// The key this request addresses.
    pub fn key(&self) -> Key {
        match self {
            ReqKind::Insert(k, _)
            | ReqKind::Lookup(k)
            | ReqKind::Update(k, _)
            | ReqKind::Delete(k) => *k,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            ReqKind::Insert(..) => "insert",
            ReqKind::Lookup(..) => "lookup",
            ReqKind::Update(..) => "update",
            ReqKind::Delete(..) => "delete",
        }
    }

    fn bytes(&self) -> usize {
        match self {
            ReqKind::Insert(_, p) | ReqKind::Update(_, p) => 8 + p.len(),
            ReqKind::Lookup(_) | ReqKind::Delete(_) => 8,
        }
    }
}

/// Image Adjustment Message payload piggybacked on replies after a forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iam {
    /// Level `j` of the bucket that finally served the request.
    pub level: u8,
    /// That bucket's number `a`.
    pub bucket: u64,
}

/// Key-list effect of a parity Δ-commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyOp {
    /// A record with this key appeared at (rank, column).
    Add(Key),
    /// The record with this key left (rank, column).
    Remove(Key),
    /// Payload changed, key unchanged (update).
    Keep,
}

/// One Δ-commit entry (shared by single deltas and split batches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEntry {
    /// Position in the emitting column's delta stream. Every data bucket
    /// numbers its Δs densely from 0; parity buckets apply each column's
    /// stream exactly once, in order, so a duplicated or reordered delivery
    /// can never double-apply or cross Add/Remove effects.
    pub seq: u64,
    /// Record rank within the group.
    pub rank: Rank,
    /// Column = bucket offset within the group.
    pub col: usize,
    /// Key-list effect.
    pub key_op: KeyOp,
    /// XOR of old and new coding cells.
    pub delta_cell: Vec<u8>,
}

/// A client-op replay-cache entry migrated with a split or merge load, so
/// a retried write whose record moved buckets is still recognised as a
/// duplicate at its new home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayEntry {
    /// The client that issued the operation.
    pub client: NodeId,
    /// Its operation id.
    pub op_id: OpId,
    /// The key the operation addressed (decides which bucket it follows).
    pub key: Key,
    /// The result the first execution produced.
    pub result: OpResult,
}

/// A data or parity shard's full content, moved during recovery, upgrades,
/// and bucket installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardContent {
    /// Data bucket: `(rank, key, payload)` triples plus the bucket's level
    /// and insert counter.
    Data {
        /// Bucket level `j`.
        level: u8,
        /// Next unassigned rank (the insert counter `r`).
        next_rank: Rank,
        /// Next delta sequence number of this column's Δ stream, so a
        /// rebuilt bucket continues numbering where the lost one stopped.
        delta_seq: u64,
        /// Live records.
        records: Vec<(Rank, Key, Vec<u8>)>,
    },
    /// Parity bucket: parity records by rank.
    Parity {
        /// Records: `(rank, member keys by column, parity cell)`.
        records: Vec<(Rank, Vec<Option<Key>>, Vec<u8>)>,
        /// Per data column: the next Δ sequence number this bucket expects,
        /// so a rebuilt parity bucket resumes each column's stream exactly
        /// where the snapshot left it.
        col_seqs: Vec<u64>,
    },
}

impl ShardContent {
    fn bytes(&self) -> usize {
        match self {
            ShardContent::Data { records, .. } => {
                records.iter().map(|(_, _, p)| 20 + p.len()).sum()
            }
            ShardContent::Parity { records, col_seqs } => {
                8 * col_seqs.len()
                    + records
                        .iter()
                        .map(|(_, ks, c)| 12 + 8 * ks.len() + c.len())
                        .sum::<usize>()
            }
        }
    }
}

/// Every message of the LH\*RS protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    // ----- application driver → client (not network traffic) -----
    /// Submit an operation to a client.
    Do {
        /// Driver-assigned operation id.
        op_id: OpId,
        /// The operation.
        op: ClientOp,
    },

    // ----- client ↔ data buckets -----
    /// A key-specific request, possibly forwarded server-to-server (A2).
    Req {
        /// Operation id (echoed in the reply).
        op_id: OpId,
        /// The client to reply to.
        client: NodeId,
        /// The logical bucket the sender believes is correct.
        intended: u64,
        /// Number of server-to-server forwards so far.
        hops: u8,
        /// The request itself.
        kind: ReqKind,
    },
    /// Server reply to the client (lookup always; writes when `ack_writes`).
    Reply {
        /// Operation id.
        op_id: OpId,
        /// Result value.
        result: OpResult,
        /// Image adjustment, present when the request was forwarded.
        iam: Option<Iam>,
    },
    /// Scan request to one bucket, tagged with the level the client's image
    /// assumes for it (drives exactly-once propagation).
    Scan {
        /// Operation id.
        op_id: OpId,
        /// Client to reply to.
        client: NodeId,
        /// Filter to evaluate.
        filter: FilterSpec,
        /// Level the sender assumes this bucket has.
        assumed_level: u8,
        /// Whether a bucket with no matching records must still reply
        /// (deterministic termination) or may stay silent (probabilistic).
        reply_if_empty: bool,
    },
    /// A bucket's scan reply (sent by every reached bucket — deterministic
    /// termination).
    ScanReply {
        /// Operation id.
        op_id: OpId,
        /// Replying bucket number.
        bucket: u64,
        /// Replying bucket's level `j`.
        level: u8,
        /// Matching records.
        hits: Vec<(Key, Vec<u8>)>,
    },

    // ----- data bucket → parity buckets -----
    /// One record's Δ-commit.
    ParityDelta {
        /// Group of the emitting bucket.
        group: u64,
        /// The Δ entry.
        entry: DeltaEntry,
        /// Where to send the ack, when `ack_parity` is on.
        ack_to: Option<NodeId>,
    },
    /// Batched Δ-commits emitted by a split, merge, or retransmission (one
    /// message per parity bucket).
    ParityBatch {
        /// Group of the emitting bucket.
        group: u64,
        /// All entries of the batch.
        entries: Vec<DeltaEntry>,
        /// Where to send the ack, when `ack_parity` is on.
        ack_to: Option<NodeId>,
    },
    /// Cumulative parity commit acknowledgement (reliable mode only): the
    /// parity bucket has applied every Δ of column `col` below `upto`.
    ParityAck {
        /// The data column (bucket offset in the group) being acked.
        col: usize,
        /// All sequence numbers `< upto` are applied.
        upto: u64,
    },

    // ----- growth control -----
    /// Data bucket tells the coordinator it exceeds capacity.
    ReportOverflow {
        /// The overflowing bucket.
        bucket: u64,
        /// Its current record count.
        size: usize,
    },
    /// Coordinator turns a pool node into data bucket `bucket`.
    InitData {
        /// Bucket number.
        bucket: u64,
        /// Initial level.
        level: u8,
        /// Resume point for the column's Δ stream: 0 for a never-seen
        /// bucket number, the retired predecessor's final sequence when the
        /// bucket was merged away earlier (parity channels are never reset,
        /// so a re-created column must continue, not restart, its stream).
        delta_seq: u64,
    },
    /// Coordinator turns a pool node into parity bucket `index` of `group`
    /// under availability level `k`.
    InitParity {
        /// Bucket group.
        group: u64,
        /// Parity column index `q < k`.
        index: usize,
        /// The group's availability level.
        k: usize,
    },
    /// Coordinator orders bucket `source` to split.
    DoSplit {
        /// Splitting bucket.
        source: u64,
        /// Newly created bucket.
        target: u64,
        /// Level of both after the split.
        new_level: u8,
    },
    /// The splitting bucket ships movers to the new bucket. Retransmitted
    /// verbatim if the coordinator re-orders the split, and applied
    /// idempotently (per key) at the receiver, so a lost or duplicated
    /// load never loses or doubles records.
    SplitLoad {
        /// The new bucket's number.
        bucket: u64,
        /// Its level.
        level: u8,
        /// Records moving in.
        records: Vec<Record>,
        /// Replay-cache entries following their keys to the new bucket.
        replay: Vec<ReplayEntry>,
    },

    // ----- failure handling -----
    /// Client reports a suspected-dead bucket, with the stalled operation
    /// so the coordinator can complete it.
    Suspect {
        /// Operation id of the stalled request.
        op_id: OpId,
        /// Reporting client.
        client: NodeId,
        /// The logical bucket that timed out.
        bucket: u64,
        /// The stalled request.
        kind: ReqKind,
    },
    /// Coordinator liveness probe.
    Probe {
        /// Correlation token.
        token: u64,
    },
    /// Probe response.
    ProbeAck {
        /// Echoed token.
        token: u64,
        /// The logical bucket this node carries (data) or `None` (parity).
        bucket: Option<u64>,
    },
    /// Coordinator requests a full shard for recovery or upgrade.
    TransferShard {
        /// Correlation token.
        token: u64,
    },
    /// Shard content reply.
    ShardData {
        /// Echoed token.
        token: u64,
        /// Shard index within the group: `0..m` data columns,
        /// `m..m+k` parity columns.
        shard: usize,
        /// The content.
        content: ShardContent,
    },
    /// Install a rebuilt shard on a spare node.
    Install {
        /// Group the shard belongs to.
        group: u64,
        /// For data shards, the bucket number; parity shards use `index`.
        bucket: Option<u64>,
        /// For parity shards, the parity column index.
        index: Option<usize>,
        /// Group availability level (parity shards need the code).
        k: usize,
        /// The content to install.
        content: ShardContent,
        /// Correlation token for the ack.
        token: u64,
    },
    /// Spare confirms installation.
    InstallAck {
        /// Echoed token.
        token: u64,
    },
    /// Coordinator asks a parity bucket which rank (if any) holds `key` —
    /// the first step of degraded-mode record recovery.
    FindRecord {
        /// Key searched.
        key: Key,
        /// Correlation token.
        token: u64,
    },
    /// Parity bucket's answer.
    FindRecordReply {
        /// Echoed token.
        token: u64,
        /// `(rank, member keys)` when the key belongs to a record group
        /// known to this parity bucket.
        found: Option<(Rank, Vec<Option<Key>>)>,
    },
    /// Coordinator asks one shard for the cell at `rank` (degraded read).
    ReadCell {
        /// Rank wanted.
        rank: Rank,
        /// Correlation token.
        token: u64,
    },
    /// Cell reply for a degraded read.
    CellData {
        /// Echoed token.
        token: u64,
        /// Shard index within the group (`0..m` data, `m..m+k` parity).
        shard: usize,
        /// The coding cell (all-zero when the shard has nothing at the
        /// rank).
        cell: Vec<u8>,
    },

    /// Splitting commit: the new bucket confirms it absorbed the movers, so
    /// the coordinator can sequence upgrades and further splits after it.
    SplitDone {
        /// The new bucket.
        bucket: u64,
    },
    /// Driver-injected: undo the last split (bucket merge — the shrink
    /// operation for deletion-heavy files, §4.3 design variation).
    ForceMerge,
    /// Coordinator orders the last bucket to merge back into its split
    /// source.
    DoMerge {
        /// The bucket absorbing the records.
        source: u64,
        /// The disappearing bucket (always the last one).
        target: u64,
        /// The source's level after the merge.
        new_level: u8,
    },
    /// The disappearing bucket ships its records to the absorbing bucket.
    MergeLoad {
        /// The absorbing bucket's post-merge level.
        level: u8,
        /// Records moving back.
        records: Vec<Record>,
        /// Replay-cache entries following the records.
        replay: Vec<ReplayEntry>,
        /// The retiring column's final Δ sequence (after the retraction
        /// Δs), echoed to the coordinator so a future re-creation of the
        /// bucket resumes the stream there.
        final_seq: u64,
    },
    /// The absorbing bucket confirms the merge to the coordinator.
    MergeDone {
        /// The absorbing bucket.
        bucket: u64,
        /// The retired column's final Δ sequence, from [`Msg::MergeLoad`].
        final_seq: u64,
    },
    /// Coordinator decommissions a node (ex-bucket after a merge, or a
    /// restarted node whose bucket was recreated elsewhere); the node
    /// returns to the blank pool.
    Retire,
    /// Driver-injected boot signal for a node restarting after an outage
    /// (§2.5.4 self-detected recovery): the node must ask the coordinator
    /// whether it still owns its shard before serving anything.
    SelfReport,
    /// Restarted node → coordinator: "am I still bucket `bucket` / parity
    /// `(group, index)`?"
    CheckOwnership {
        /// Data-bucket claim.
        bucket: Option<u64>,
        /// Parity-bucket claim.
        parity: Option<(u64, usize)>,
    },
    /// Coordinator → restarted node: the claim holds; resume serving. (A
    /// displaced node gets `Retire` instead.)
    OwnershipAck,
    /// Restarted data bucket → coordinator: "my local log replayed to
    /// Δ-sequence `delta_seq`; may I catch up with a Δ-suffix instead of a
    /// full rebuild?" Sent instead of [`Msg::CheckOwnership`] when the node
    /// recovered state from a durable store.
    RestartReport {
        /// The bucket the node claims.
        bucket: u64,
        /// First Δ-sequence the node has *not* applied locally.
        delta_seq: u64,
    },
    /// Coordinator → parity bucket: send the restarting data bucket the
    /// Δ-suffix of column `col` from `from_seq` onward, and report coverage
    /// back to the coordinator.
    SuffixPull {
        /// The group being caught up.
        group: u64,
        /// The restarting data column.
        col: usize,
        /// First sequence number the restarting bucket is missing.
        from_seq: u64,
        /// The restarting data bucket's node.
        target: NodeId,
    },
    /// Parity bucket → restarting data bucket: the missed Δ-suffix of its
    /// own column (`complete` = the history covered the whole gap).
    DeltaSuffix {
        /// The data column being caught up.
        col: usize,
        /// Echo of the requested start sequence.
        from_seq: u64,
        /// Entries `[from_seq, next_seq)` in order; empty when not covered.
        entries: Vec<DeltaEntry>,
        /// Whether the history covered the whole `[from_seq, next_seq)` gap.
        complete: bool,
    },
    /// Parity bucket → coordinator: coverage report for a
    /// [`Msg::SuffixPull`], so the coordinator can decide Δ-suffix
    /// acceptance vs. full-rebuild fallback.
    SuffixInfo {
        /// The restarting bucket.
        bucket: u64,
        /// Its column.
        col: usize,
        /// This parity bucket's next expected sequence for the column.
        next_seq: u64,
        /// Whether this parity bucket could serve the whole suffix.
        covered: bool,
        /// Entries shipped in the matching [`Msg::DeltaSuffix`].
        count: u64,
        /// Payload bytes shipped in the matching [`Msg::DeltaSuffix`].
        bytes: u64,
    },
    /// Restarting data bucket → coordinator: the catch-up failed locally —
    /// a shipped Δ-suffix entry could not be applied, or the handshake
    /// wedged past the bucket's watchdog. The local replica is unusable;
    /// demote it and recreate the bucket through the full RS rebuild.
    RestartAbort {
        /// The bucket giving up on the Δ-suffix path.
        bucket: u64,
    },
    /// Coordinator → surviving data bucket: the recovery shard collection
    /// for `group` is over (consistent cut taken, or the recovery gave
    /// up) — resume applying writes deferred since [`Msg::TransferShard`].
    /// Data buckets freeze mutations while a collection is in flight so
    /// the coordinator can observe every survivor at the same Δ-sequence;
    /// a lost `ResumeWrites` is covered by the bucket's own safety timer.
    ResumeWrites {
        /// The parity group whose collection finished.
        group: u64,
    },
    /// Driver-injected: audit a whole group's liveness and recover any
    /// failed shards (how parity-bucket failures, invisible to clients, get
    /// detected in the drills).
    CheckGroup {
        /// Group to audit.
        group: u64,
    },
    /// Driver-injected: drop the coordinator's `(n, i)` and reconstruct it
    /// from a bucket scan (algorithm A6 drill).
    RecoverFileState,

    // ----- file-state recovery -----
    /// Coordinator queries a bucket's `(m, j_m)` during file-state
    /// recovery.
    StateQuery,
    /// Bucket's answer.
    StateReply {
        /// Bucket number.
        bucket: u64,
        /// Bucket level.
        level: u8,
    },
}

impl lhrs_sim::Payload for Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::Do { .. } => "app-do",
            Msg::Req { kind, .. } => kind.label(),
            Msg::Reply { .. } => "reply",
            Msg::Scan { .. } => "scan",
            Msg::ScanReply { .. } => "scan-reply",
            Msg::ParityDelta { .. } => "parity-delta",
            Msg::ParityBatch { .. } => "parity-batch",
            Msg::ParityAck { .. } => "parity-ack",
            Msg::ReportOverflow { .. } => "overflow",
            Msg::InitData { .. } => "init-data",
            Msg::InitParity { .. } => "init-parity",
            Msg::DoSplit { .. } => "split",
            Msg::SplitLoad { .. } => "split-load",
            Msg::Suspect { .. } => "suspect",
            Msg::Probe { .. } => "probe",
            Msg::ProbeAck { .. } => "probe-ack",
            Msg::TransferShard { .. } => "transfer-req",
            Msg::ShardData { .. } => "transfer-data",
            Msg::Install { .. } => "install",
            Msg::InstallAck { .. } => "install-ack",
            Msg::FindRecord { .. } => "find-record",
            Msg::FindRecordReply { .. } => "find-record-reply",
            Msg::ReadCell { .. } => "read-cell",
            Msg::CellData { .. } => "cell-data",
            Msg::SplitDone { .. } => "split-done",
            Msg::ForceMerge => "force-merge",
            Msg::DoMerge { .. } => "merge",
            Msg::MergeLoad { .. } => "merge-load",
            Msg::MergeDone { .. } => "merge-done",
            Msg::Retire => "retire",
            Msg::SelfReport => "self-report",
            Msg::CheckOwnership { .. } => "check-ownership",
            Msg::OwnershipAck => "ownership-ack",
            Msg::RestartReport { .. } => "restart-report",
            Msg::SuffixPull { .. } => "suffix-pull",
            Msg::DeltaSuffix { .. } => "delta-suffix",
            Msg::SuffixInfo { .. } => "suffix-info",
            Msg::RestartAbort { .. } => "restart-abort",
            Msg::ResumeWrites { .. } => "resume-writes",
            Msg::CheckGroup { .. } => "check-group",
            Msg::RecoverFileState => "recover-file-state",
            Msg::StateQuery => "state-query",
            Msg::StateReply { .. } => "state-reply",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            Msg::Do { .. } => 0,
            Msg::Req { kind, .. } => 24 + kind.bytes(),
            Msg::Reply { result, .. } => {
                16 + match result {
                    OpResult::Value(Some(p)) => p.len(),
                    OpResult::ScanHits(hits) => hits.iter().map(|(_, p)| 8 + p.len()).sum(),
                    _ => 0,
                }
            }
            Msg::Scan { filter, .. } => {
                24 + match filter {
                    FilterSpec::PayloadContains(n) => n.len(),
                    _ => 8,
                }
            }
            Msg::ScanReply { hits, .. } => {
                16 + hits.iter().map(|(_, p)| 8 + p.len()).sum::<usize>()
            }
            Msg::ParityDelta { entry, .. } => 32 + entry.delta_cell.len(),
            Msg::ParityBatch { entries, .. } => {
                8 + entries
                    .iter()
                    .map(|e| 32 + e.delta_cell.len())
                    .sum::<usize>()
            }
            Msg::ParityAck { .. } => 12,
            Msg::ReportOverflow { .. } => 12,
            Msg::InitData { .. } => 20,
            Msg::InitParity { .. } => 16,
            Msg::DoSplit { .. } => 20,
            Msg::SplitLoad {
                records, replay, ..
            } => {
                12 + 24 * replay.len() + records.iter().map(|r| 12 + r.payload.len()).sum::<usize>()
            }
            Msg::Suspect { kind, .. } => 24 + kind.bytes(),
            Msg::Probe { .. } | Msg::ProbeAck { .. } => 8,
            Msg::TransferShard { .. } => 8,
            Msg::ShardData { content, .. } => 16 + content.bytes(),
            Msg::Install { content, .. } => 32 + content.bytes(),
            Msg::InstallAck { .. } => 8,
            Msg::FindRecord { .. } => 16,
            Msg::FindRecordReply { found, .. } => {
                8 + found.as_ref().map(|(_, ks)| 8 + 8 * ks.len()).unwrap_or(0)
            }
            Msg::ReadCell { .. } => 16,
            Msg::CellData { cell, .. } => 12 + cell.len(),
            Msg::SplitDone { .. } => 8,
            Msg::ForceMerge => 0,
            Msg::DoMerge { .. } => 20,
            Msg::MergeLoad {
                records, replay, ..
            } => {
                16 + 24 * replay.len() + records.iter().map(|r| 12 + r.payload.len()).sum::<usize>()
            }
            Msg::MergeDone { .. } => 16,
            Msg::Retire => 4,
            Msg::SelfReport => 0,
            Msg::CheckOwnership { .. } => 20,
            Msg::OwnershipAck => 4,
            Msg::RestartReport { .. } => 16,
            Msg::SuffixPull { .. } => 28,
            Msg::DeltaSuffix { entries, .. } => {
                16 + entries
                    .iter()
                    .map(|e| 32 + e.delta_cell.len())
                    .sum::<usize>()
            }
            Msg::SuffixInfo { .. } => 40,
            Msg::RestartAbort { .. } => 12,
            Msg::ResumeWrites { .. } => 8,
            Msg::CheckGroup { .. } => 8,
            Msg::RecoverFileState => 0,
            Msg::StateQuery => 4,
            Msg::StateReply { .. } => 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhrs_sim::Payload;

    #[test]
    fn kinds_are_stable_labels() {
        let m = Msg::Req {
            op_id: 1,
            client: NodeId(0),
            intended: 0,
            hops: 0,
            kind: ReqKind::Insert(1, vec![1, 2, 3]),
        };
        assert_eq!(m.kind(), "insert");
        assert_eq!(m.size_bytes(), 24 + 8 + 3);
        assert_eq!(Msg::StateQuery.kind(), "state-query");
    }

    #[test]
    fn filter_semantics() {
        assert!(FilterSpec::All.matches(1, b"anything"));
        assert!(FilterSpec::PayloadContains(b"bc".to_vec()).matches(1, b"abcd"));
        assert!(!FilterSpec::PayloadContains(b"xz".to_vec()).matches(1, b"abcd"));
        assert!(FilterSpec::PayloadContains(Vec::new()).matches(1, b""));
        assert!(FilterSpec::KeyRange(10, 20).matches(10, b""));
        assert!(!FilterSpec::KeyRange(10, 20).matches(20, b""));
    }

    #[test]
    fn reqkind_exposes_key() {
        assert_eq!(ReqKind::Lookup(7).key(), 7);
        assert_eq!(ReqKind::Insert(9, vec![]).key(), 9);
        assert_eq!(ReqKind::Update(3, vec![1]).key(), 3);
        assert_eq!(ReqKind::Delete(4).key(), 4);
    }
}
