//! Closed-form file availability — the analysis behind the paper's
//! motivation for scalable availability (experiment F2).
//!
//! With every bucket independently available with probability `p`, a bucket
//! group of `d` existing data buckets and `k` parity buckets survives (all
//! its data remains readable) iff at most `k` of its `d + k` buckets are
//! down. The file survives iff every group does. For fixed `k` the file
//! availability `P(M)` decays to 0 as the file scales; growing `k` with `M`
//! holds it up — the quantitative argument the scheme rests on.

/// Probability that a single group of `d` data + `k` parity buckets
/// survives, with per-bucket availability `p`.
pub fn group_availability(d: usize, k: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let n = d + k;
    let q = 1.0 - p;
    // Σ_{f=0..k} C(n, f) q^f p^(n-f)
    let mut sum = 0.0;
    for f in 0..=k.min(n) {
        sum += binomial(n, f) * q.powi(f as i32) * p.powi((n - f) as i32);
    }
    sum.min(1.0)
}

/// Probability that an entire file of `m_buckets` data buckets, group size
/// `m`, availability level `k`, survives.
///
/// The last group may be partial; non-existing columns cannot fail.
///
/// ```
/// use lhrs_core::availability::{file_availability, lh_star_availability};
///
/// let p = 0.99;
/// // A plain LH* file of 1000 buckets is almost certainly broken...
/// assert!(lh_star_availability(1000, p) < 1e-4);
/// // ...while 1-availability with m = 4 keeps it usable,
/// assert!(file_availability(1000, 4, 1, p) > 0.75);
/// // and k = 3 makes it solid.
/// assert!(file_availability(1000, 4, 3, p) > 0.9999);
/// ```
pub fn file_availability(m_buckets: u64, m: usize, k: usize, p: f64) -> f64 {
    if m_buckets == 0 {
        return 1.0;
    }
    let full_groups = (m_buckets as usize) / m;
    let rest = (m_buckets as usize) % m;
    let mut avail = group_availability(m, k, p).powi(full_groups as i32);
    if rest > 0 {
        avail *= group_availability(rest, k, p);
    }
    avail
}

/// Availability of a plain LH\* file (no parity): every bucket must be up.
pub fn lh_star_availability(m_buckets: u64, p: f64) -> f64 {
    p.powi(m_buckets as i32)
}

/// Availability of an LH\*m (mirrored) file: each bucket and its mirror
/// form a pair that survives unless both fail.
pub fn mirrored_availability(m_buckets: u64, p: f64) -> f64 {
    let q = 1.0 - p;
    (1.0 - q * q).powi(m_buckets as i32)
}

/// The smallest `k` that keeps the file availability at or above `target`
/// for the given size — the scalable-availability planning rule.
pub fn k_needed(m_buckets: u64, m: usize, p: f64, target: f64, k_max: usize) -> Option<usize> {
    (1..=k_max).find(|&k| file_availability(m_buckets, m, k, p) >= target)
}

fn binomial(n: usize, r: usize) -> f64 {
    if r > n {
        return 0.0;
    }
    let r = r.min(n - r);
    let mut num = 1.0;
    let mut den = 1.0;
    for i in 0..r {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn binomial_small_values() {
        assert!(close(binomial(4, 2), 6.0));
        assert!(close(binomial(10, 0), 1.0));
        assert!(close(binomial(10, 10), 1.0));
        assert!(close(binomial(5, 3), 10.0));
        assert!(close(binomial(3, 5), 0.0));
    }

    #[test]
    fn group_survival_matches_hand_computation() {
        // d = 2, k = 1, p = 0.9: survive iff ≤ 1 of 3 fail:
        // p^3 + 3 p^2 q = 0.729 + 3·0.81·0.1 = 0.972.
        assert!(close(group_availability(2, 1, 0.9), 0.972));
        // k = 0: all must survive.
        assert!(close(group_availability(3, 0, 0.9), 0.9f64.powi(3)));
    }

    #[test]
    fn paper_motivation_numbers() {
        // The predecessor text: p = 0.99, M = 100 ⇒ P ≈ 0.366 for plain
        // LH*; M = 1000 ⇒ P ≈ 4e-5.
        let p100 = lh_star_availability(100, 0.99);
        assert!((0.35..0.38).contains(&p100), "{p100}");
        let p1000 = lh_star_availability(1000, 0.99);
        assert!(p1000 < 1e-4, "{p1000}");
        // 1-availability with m = 4 rescues M = 100 to ≈ 1.
        let rescued = file_availability(100, 4, 1, 0.99);
        assert!(rescued > 0.97, "{rescued}");
    }

    #[test]
    fn availability_decreases_with_size_and_increases_with_k() {
        let p = 0.99;
        let mut prev = 1.0;
        for &m_buckets in &[8u64, 64, 512, 4096] {
            let a = file_availability(m_buckets, 4, 1, p);
            assert!(a < prev);
            prev = a;
            let a2 = file_availability(m_buckets, 4, 2, p);
            let a3 = file_availability(m_buckets, 4, 3, p);
            assert!(a2 > a, "k=2 must beat k=1");
            assert!(a3 > a2, "k=3 must beat k=2");
        }
    }

    #[test]
    fn k_needed_grows_with_file_size() {
        let p = 0.99;
        let target = 0.999;
        let k_small = k_needed(16, 4, p, target, 8).unwrap();
        let k_large = k_needed(65536, 4, p, target, 8).unwrap();
        assert!(k_large > k_small, "{k_small} !< {k_large}");
    }

    #[test]
    fn partial_last_group_handled() {
        // 5 buckets with m = 4: one full group + one 1-bucket group.
        let a = file_availability(5, 4, 1, 0.9);
        let expect = group_availability(4, 1, 0.9) * group_availability(1, 1, 0.9);
        assert!(close(a, expect));
    }

    #[test]
    fn mirroring_matches_pair_model() {
        let a = mirrored_availability(10, 0.9);
        assert!(close(a, (1.0f64 - 0.01).powi(10)));
    }
}
