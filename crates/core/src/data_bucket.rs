//! The data-bucket server: primary record storage, A2 forwarding, rank
//! assignment, Δ-emission to parity buckets, and splitting.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, BTreeMap, HashMap};

use lhrs_lh::{a2_route, A2Outcome};
use lhrs_sim::{Env, NodeId};

use crate::msg::{DeltaEntry, Iam, KeyOp, Msg, OpResult, ReqKind, ShardContent};
use crate::record::{cell_delta, encode_cell, Record};
use crate::registry::SharedHandle;
use crate::{Key, Rank};

/// A primary (data) bucket of the LH\*RS file.
pub struct DataBucket {
    shared: SharedHandle,
    /// Logical bucket number.
    pub bucket: u64,
    /// Current bucket level `j`.
    pub level: u8,
    /// Records by rank — the rank is the `r` of the record-group key.
    records: BTreeMap<Rank, Record>,
    /// Key → rank index for O(1) key access.
    by_key: HashMap<Key, Rank>,
    /// The insert counter `r`: next never-used rank.
    next_rank: Rank,
    /// Ranks freed by deletes, reused smallest-first to keep record groups
    /// dense (the §4.3 storage-efficiency rule, applied locally).
    free_ranks: BinaryHeap<Reverse<Rank>>,
    /// Whether an overflow report is already outstanding.
    overflow_reported: bool,
}

impl DataBucket {
    /// Create an empty bucket.
    pub fn new(shared: SharedHandle, bucket: u64, level: u8) -> Self {
        DataBucket {
            shared,
            bucket,
            level,
            records: BTreeMap::new(),
            by_key: HashMap::new(),
            next_rank: 0,
            free_ranks: BinaryHeap::new(),
            overflow_reported: false,
        }
    }

    /// Restore a bucket from recovered content (hot-spare installation).
    pub fn from_content(
        shared: SharedHandle,
        bucket: u64,
        level: u8,
        next_rank: Rank,
        records: Vec<(Rank, Key, Vec<u8>)>,
    ) -> Self {
        let mut b = DataBucket::new(shared, bucket, level);
        b.next_rank = next_rank;
        for (rank, key, payload) in records {
            b.by_key.insert(key, rank);
            b.records.insert(rank, Record { key, payload });
        }
        // Ranks below `next_rank` not in use are reusable gaps.
        for r in 0..next_rank {
            if !b.records.contains_key(&r) {
                b.free_ranks.push(Reverse(r));
            }
        }
        b
    }

    /// Bucket-group number `g = ⌊bucket / m⌋`.
    pub fn group(&self) -> u64 {
        self.bucket / self.shared.cfg.group_size as u64
    }

    /// Reed–Solomon column index: offset within the group.
    pub fn col(&self) -> usize {
        (self.bucket % self.shared.cfg.group_size as u64) as usize
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the bucket holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate `(rank, key, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, Key, &[u8])> {
        self.records
            .iter()
            .map(|(r, rec)| (*r, rec.key, rec.payload.as_slice()))
    }

    /// Approximate payload bytes held.
    pub fn payload_bytes(&self) -> usize {
        self.records.values().map(|r| r.payload.len()).sum()
    }

    /// Main message handler, called from the node dispatcher.
    pub fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Req {
                op_id,
                client,
                intended,
                hops,
                kind,
            } => self.handle_req(env, op_id, client, intended, hops, kind),
            Msg::DoSplit {
                source,
                target,
                new_level,
            } => self.handle_split(env, source, target, new_level),
            Msg::DoMerge {
                source,
                target,
                new_level,
            } => self.handle_merge(env, source, target, new_level),
            Msg::MergeLoad { level, records } => {
                self.level = level;
                // A merge-driven absorb must not immediately re-split the
                // bucket (that would undo the shrink the file manager asked
                // for); a later insert can still report overflow.
                self.absorb_movers(env, records, false);
                let coord = self.shared.registry.borrow().coordinator;
                env.send(coord, Msg::MergeDone { bucket: self.bucket });
            }
            Msg::SplitLoad { bucket, level, records } => {
                // Movers arriving at a freshly initialised bucket.
                debug_assert_eq!(bucket, self.bucket);
                debug_assert_eq!(level, self.level);
                self.absorb_movers(env, records, true);
                let coord = self.shared.registry.borrow().coordinator;
                env.send(coord, Msg::SplitDone { bucket: self.bucket });
            }
            Msg::Scan {
                op_id,
                client,
                filter,
                assumed_level,
                reply_if_empty,
            } => {
                // Propagate to the buckets this scan's sender image does not
                // know about: for each level l the sender missed, the child
                // bucket created when this bucket split from l to l+1.
                let mut l = assumed_level;
                while l < self.level {
                    let child = self.bucket + (1u64 << l);
                    let node = self.shared.registry.borrow().data_node(child);
                    env.send(
                        node,
                        Msg::Scan {
                            op_id,
                            client,
                            filter: filter.clone(),
                            assumed_level: l + 1,
                            reply_if_empty,
                        },
                    );
                    l += 1;
                }
                let hits: Vec<(Key, Vec<u8>)> = self
                    .records
                    .values()
                    .filter(|r| filter.matches(r.key, &r.payload))
                    .map(|r| (r.key, r.payload.clone()))
                    .collect();
                // Probabilistic termination: silent unless there are hits.
                if reply_if_empty || !hits.is_empty() {
                    env.send(
                        client,
                        Msg::ScanReply {
                            op_id,
                            bucket: self.bucket,
                            level: self.level,
                            hits,
                        },
                    );
                }
            }
            Msg::TransferShard { token } => {
                let content = ShardContent::Data {
                    level: self.level,
                    next_rank: self.next_rank,
                    records: self
                        .records
                        .iter()
                        .map(|(r, rec)| (*r, rec.key, rec.payload.clone()))
                        .collect(),
                };
                env.send(
                    from,
                    Msg::ShardData {
                        token,
                        shard: self.col(),
                        content,
                    },
                );
            }
            Msg::ReadCell { rank, token } => {
                let cell_len = self.shared.cfg.cell_len();
                let cell = self
                    .records
                    .get(&rank)
                    .map(|rec| encode_cell(&rec.payload, cell_len))
                    .unwrap_or_else(|| vec![0u8; cell_len]);
                env.send(
                    from,
                    Msg::CellData {
                        token,
                        shard: self.col(),
                        cell,
                    },
                );
            }
            Msg::Probe { token } => {
                env.send(
                    from,
                    Msg::ProbeAck {
                        token,
                        bucket: Some(self.bucket),
                    },
                );
            }
            Msg::StateQuery => {
                env.send(
                    from,
                    Msg::StateReply {
                        bucket: self.bucket,
                        level: self.level,
                    },
                );
            }
            Msg::SelfReport => {
                // Boot after an outage: check with the coordinator before
                // serving (the coordinator may have recreated this bucket
                // on a spare meanwhile).
                let coord = self.shared.registry.borrow().coordinator;
                env.send(
                    coord,
                    Msg::CheckOwnership {
                        bucket: Some(self.bucket),
                        parity: None,
                    },
                );
            }
            Msg::OwnershipAck => { /* still the owner: resume serving */ }
            Msg::ParityAck { .. } => { /* reliable-mode ack; nothing to do */ }
            other => {
                debug_assert!(false, "data bucket {} got {:?}", self.bucket, other);
            }
        }
    }

    fn handle_req(
        &mut self,
        env: &mut Env<'_, Msg>,
        op_id: u64,
        client: NodeId,
        _intended: u64,
        hops: u8,
        kind: ReqKind,
    ) {
        // Algorithm A2: verify this bucket is the correct address, forward
        // otherwise. N = 1 throughout LH*RS.
        match a2_route(self.bucket, self.level, kind.key(), 1) {
            A2Outcome::Forward(next) => {
                let node = self.shared.registry.borrow().data_node(next);
                env.send(
                    node,
                    Msg::Req {
                        op_id,
                        client,
                        intended: next,
                        hops: hops + 1,
                        kind,
                    },
                );
            }
            A2Outcome::Accept => {
                let iam = (hops > 0).then_some(Iam {
                    level: self.level,
                    bucket: self.bucket,
                });
                let ack_writes = self.shared.cfg.ack_writes;
                match kind {
                    ReqKind::Lookup(key) => {
                        let payload = self.by_key.get(&key).map(|r| self.records[r].payload.clone());
                        env.send(
                            client,
                            Msg::Reply {
                                op_id,
                                result: OpResult::Value(payload),
                                iam,
                            },
                        );
                    }
                    ReqKind::Insert(key, payload) => {
                        if self.by_key.contains_key(&key) {
                            env.send(
                                client,
                                Msg::Reply {
                                    op_id,
                                    result: OpResult::DuplicateKey,
                                    iam,
                                },
                            );
                            return;
                        }
                        let rank = self.alloc_rank();
                        let cell = encode_cell(&payload, self.shared.cfg.cell_len());
                        self.by_key.insert(key, rank);
                        self.records.insert(rank, Record { key, payload });
                        self.emit_delta(env, rank, KeyOp::Add(key), cell);
                        self.maybe_report_overflow(env);
                        if ack_writes || iam.is_some() {
                            env.send(
                                client,
                                Msg::Reply {
                                    op_id,
                                    result: OpResult::Inserted,
                                    iam,
                                },
                            );
                        }
                    }
                    ReqKind::Update(key, new_payload) => {
                        let Some(&rank) = self.by_key.get(&key) else {
                            env.send(
                                client,
                                Msg::Reply {
                                    op_id,
                                    result: OpResult::NotFound,
                                    iam,
                                },
                            );
                            return;
                        };
                        let cell_len = self.shared.cfg.cell_len();
                        let rec = self.records.get_mut(&rank).expect("index consistent");
                        let old_cell = encode_cell(&rec.payload, cell_len);
                        let new_cell = encode_cell(&new_payload, cell_len);
                        rec.payload = new_payload;
                        let delta = cell_delta(&old_cell, &new_cell);
                        self.emit_delta(env, rank, KeyOp::Keep, delta);
                        if ack_writes || iam.is_some() {
                            env.send(
                                client,
                                Msg::Reply {
                                    op_id,
                                    result: OpResult::Updated,
                                    iam,
                                },
                            );
                        }
                    }
                    ReqKind::Delete(key) => {
                        let Some(rank) = self.by_key.remove(&key) else {
                            env.send(
                                client,
                                Msg::Reply {
                                    op_id,
                                    result: OpResult::NotFound,
                                    iam,
                                },
                            );
                            return;
                        };
                        let rec = self.records.remove(&rank).expect("index consistent");
                        self.free_ranks.push(Reverse(rank));
                        let cell = encode_cell(&rec.payload, self.shared.cfg.cell_len());
                        self.emit_delta(env, rank, KeyOp::Remove(key), cell);
                        if ack_writes || iam.is_some() {
                            env.send(
                                client,
                                Msg::Reply {
                                    op_id,
                                    result: OpResult::Deleted,
                                    iam,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// Execute a split ordered by the coordinator: partition by
    /// `h_{new_level}`, ship movers, retract their parity contributions.
    fn handle_split(&mut self, env: &mut Env<'_, Msg>, source: u64, target: u64, new_level: u8) {
        debug_assert_eq!(source, self.bucket);
        let cell_len = self.shared.cfg.cell_len();
        let mut movers = Vec::new();
        let mut removals = Vec::new();
        let moving_ranks: Vec<Rank> = self
            .records
            .iter()
            .filter(|(_, rec)| lhrs_lh::h(new_level, 1, rec.key) == target)
            .map(|(r, _)| *r)
            .collect();
        for rank in moving_ranks {
            let rec = self.records.remove(&rank).expect("rank listed");
            self.by_key.remove(&rec.key);
            self.free_ranks.push(Reverse(rank));
            removals.push(DeltaEntry {
                rank,
                col: self.col(),
                key_op: KeyOp::Remove(rec.key),
                delta_cell: encode_cell(&rec.payload, cell_len),
            });
            movers.push(rec);
        }
        self.level = new_level;
        self.overflow_reported = false;

        // Retract movers from this group's parity (one batch per parity
        // bucket — the bulk-transfer optimisation of the paper).
        if !removals.is_empty() {
            let group = self.group();
            let parity_nodes: Vec<NodeId> =
                self.shared.registry.borrow().parity_nodes(group).to_vec();
            for pn in parity_nodes {
                env.send(
                    pn,
                    Msg::ParityBatch {
                        group,
                        entries: removals.clone(),
                    },
                );
            }
        }

        // Ship movers to the new bucket (which enrols them in its own
        // group's parity).
        let target_node = self.shared.registry.borrow().data_node(target);
        env.send(
            target_node,
            Msg::SplitLoad {
                bucket: target,
                level: new_level,
                records: movers,
            },
        );
        // A split may leave this bucket still over capacity (skewed keys).
        self.maybe_report_overflow(env);
    }

    /// Receive records moved in by a split: assign fresh ranks and enrol
    /// them in this group's parity.
    fn absorb_movers(&mut self, env: &mut Env<'_, Msg>, records: Vec<Record>, check_overflow: bool) {
        let cell_len = self.shared.cfg.cell_len();
        let mut additions = Vec::new();
        for rec in records {
            let rank = self.alloc_rank();
            additions.push(DeltaEntry {
                rank,
                col: self.col(),
                key_op: KeyOp::Add(rec.key),
                delta_cell: encode_cell(&rec.payload, cell_len),
            });
            self.by_key.insert(rec.key, rank);
            self.records.insert(rank, rec);
        }
        if !additions.is_empty() {
            let group = self.group();
            let parity_nodes: Vec<NodeId> =
                self.shared.registry.borrow().parity_nodes(group).to_vec();
            for pn in parity_nodes {
                env.send(
                    pn,
                    Msg::ParityBatch {
                        group,
                        entries: additions.clone(),
                    },
                );
            }
        }
        if check_overflow {
            self.maybe_report_overflow(env);
        }
    }

    /// Execute a merge ordered by the coordinator: this bucket (the last
    /// one, `target`) retracts every record from its group's parity and
    /// ships them back to `source`. The node is retired afterwards.
    fn handle_merge(&mut self, env: &mut Env<'_, Msg>, source: u64, target: u64, new_level: u8) {
        debug_assert_eq!(target, self.bucket);
        let cell_len = self.shared.cfg.cell_len();
        let mut removals = Vec::new();
        let mut movers = Vec::new();
        let ranks: Vec<Rank> = self.records.keys().copied().collect();
        for rank in ranks {
            let rec = self.records.remove(&rank).expect("listed");
            self.by_key.remove(&rec.key);
            removals.push(DeltaEntry {
                rank,
                col: self.col(),
                key_op: KeyOp::Remove(rec.key),
                delta_cell: encode_cell(&rec.payload, cell_len),
            });
            movers.push(rec);
        }
        if !removals.is_empty() {
            let group = self.group();
            let parity_nodes: Vec<NodeId> =
                self.shared.registry.borrow().parity_nodes(group).to_vec();
            for pn in parity_nodes {
                env.send(
                    pn,
                    Msg::ParityBatch {
                        group,
                        entries: removals.clone(),
                    },
                );
            }
        }
        let source_node = self.shared.registry.borrow().data_node(source);
        env.send(
            source_node,
            Msg::MergeLoad {
                level: new_level,
                records: movers,
            },
        );
    }

    /// Send one Δ-commit to every parity bucket of this group.
    fn emit_delta(&self, env: &mut Env<'_, Msg>, rank: Rank, key_op: KeyOp, delta_cell: Vec<u8>) {
        let group = self.group();
        let ack_to = self.shared.cfg.ack_parity.then(|| env.me());
        let parity_nodes: Vec<NodeId> = self.shared.registry.borrow().parity_nodes(group).to_vec();
        for pn in parity_nodes {
            env.send(
                pn,
                Msg::ParityDelta {
                    group,
                    entry: DeltaEntry {
                        rank,
                        col: self.col(),
                        key_op,
                        delta_cell: delta_cell.clone(),
                    },
                    ack_to,
                },
            );
        }
    }

    fn alloc_rank(&mut self) -> Rank {
        if let Some(Reverse(r)) = self.free_ranks.pop() {
            r
        } else {
            let r = self.next_rank;
            self.next_rank += 1;
            r
        }
    }

    fn maybe_report_overflow(&mut self, env: &mut Env<'_, Msg>) {
        if !self.overflow_reported && self.records.len() > self.shared.cfg.bucket_capacity {
            self.overflow_reported = true;
            let coord = self.shared.registry.borrow().coordinator;
            env.send(
                coord,
                Msg::ReportOverflow {
                    bucket: self.bucket,
                    size: self.records.len(),
                },
            );
        }
    }

    /// The insert counter (exposed for tests and recovery assertions).
    pub fn next_rank(&self) -> Rank {
        self.next_rank
    }

    /// The shared handle (used by the node dispatcher for retirement).
    pub(crate) fn shared_handle(&self) -> SharedHandle {
        self.shared.clone()
    }
}
