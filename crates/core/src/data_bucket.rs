//! The data-bucket server: primary record storage, A2 forwarding, rank
//! assignment, Δ-emission to parity buckets, and splitting.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use lhrs_lh::{a2_route, A2Outcome};
use lhrs_obs::Event as ObsEvent;
use lhrs_sim::{Env, NodeId, TimerId};

use crate::msg::{DeltaEntry, Iam, KeyOp, Msg, OpId, OpResult, ReplayEntry, ReqKind, ShardContent};
use crate::record::{cell_delta, decode_cell, encode_cell, Record};
use crate::registry::SharedHandle;
use crate::storage::{self, BucketStore, WalOp};
use crate::{Key, Rank};

/// A primary (data) bucket of the LH\*RS file.
pub struct DataBucket {
    shared: SharedHandle,
    /// Logical bucket number.
    pub bucket: u64,
    /// Current bucket level `j`.
    pub level: u8,
    /// Records by rank — the rank is the `r` of the record-group key.
    records: BTreeMap<Rank, Record>,
    /// Key → rank index for O(1) key access.
    by_key: HashMap<Key, Rank>,
    /// The insert counter `r`: next never-used rank.
    next_rank: Rank,
    /// Ranks freed by deletes, reused smallest-first to keep record groups
    /// dense (the §4.3 storage-efficiency rule, applied locally).
    free_ranks: BinaryHeap<Reverse<Rank>>,
    /// Whether an overflow report is already outstanding.
    overflow_reported: bool,
    /// Record count at the last overflow report (drives the doubling rule
    /// for re-reports when the first report was lost).
    last_report_size: usize,
    /// Next Δ sequence number of this column's stream.
    delta_seq: u64,
    /// Reliable mode (`ack_parity`): Δs emitted but not yet acknowledged by
    /// every parity bucket, kept for retransmission. Keyed by seq.
    unacked: BTreeMap<u64, DeltaEntry>,
    /// Per parity column `q`: cumulative ack watermark (every Δ with
    /// `seq < parity_acked[q]` is applied there).
    parity_acked: Vec<u64>,
    /// Retransmission timer, armed while `unacked` is nonempty.
    retry_timer: Option<TimerId>,
    /// Consecutive retransmission rounds without watermark progress.
    retry_rounds: u32,
    /// Watermark minimum at the last progress check.
    last_min_acked: u64,
    /// Client-op replay cache: the result each recent write produced, so a
    /// retried (duplicated) request is answered identically without
    /// re-executing. The `u64` is the entry's LRU generation stamp.
    replay: HashMap<(NodeId, OpId), (Key, OpResult, u64)>,
    /// LRU recency order: generation stamp → cache key, coldest first.
    /// Eviction must be least-recently-*used*, not insertion order: a
    /// pipelined client keeps a whole window of ids in flight, and a
    /// still-retried old id that FIFO would evict first must stay cached
    /// as long as duplicates keep touching it.
    replay_lru: BTreeMap<u64, (NodeId, OpId)>,
    /// Generation counter backing `replay_lru` (monotone per bucket).
    replay_gen: u64,
    /// Last split shipment `(target, movers, replay)`, re-sent verbatim when
    /// the coordinator re-orders the split (lost SplitLoad or SplitDone).
    last_split: Option<(u64, Vec<Record>, Vec<ReplayEntry>)>,
    /// Last merge shipment `(source, new_level, movers, replay)`, ditto.
    last_merge: Option<(u64, u8, Vec<Record>, Vec<ReplayEntry>)>,
    /// Durable store, when the file runs with persistence.
    store: Option<Box<dyn BucketStore>>,
    /// Set by local-store recovery: the boot `SelfReport` should offer the
    /// coordinator a Δ-suffix catch-up instead of a plain ownership check.
    report_restart: bool,
    /// Between `RestartReport` and resumption: only catch-up traffic is
    /// processed, everything else is held in `held`.
    catching_up: bool,
    /// Messages deferred while catching up, replayed on resumption.
    held: Vec<(NodeId, Msg)>,
    /// Δ-suffixes received from distinct parity buckets this catch-up.
    suffixes_seen: usize,
    /// Whether the coordinator confirmed ownership this catch-up.
    got_ack: bool,
    /// Watchdog armed while catching up: if the handshake never completes
    /// (a suffix or the ack lost for good), the bucket gives up instead of
    /// deferring traffic forever.
    catchup_timer: Option<TimerId>,
    /// The catch-up was aborted (inapplicable suffix or watchdog expiry):
    /// the bucket is waiting for the coordinator's `Retire` and must not
    /// resume, whatever still arrives.
    catchup_failed: bool,
    /// Writes frozen while a recovery shard collection is in flight: the
    /// coordinator must observe every survivor at the same Δ-sequence, so
    /// between `TransferShard` and `ResumeWrites` all mutations are
    /// deferred into `frozen_held`.
    frozen: bool,
    /// Mutating messages deferred while frozen, replayed on resume.
    frozen_held: Vec<(NodeId, Msg)>,
    /// Safety valve: unfreeze anyway if the coordinator's `ResumeWrites`
    /// is lost (or the coordinator dies mid-recovery).
    freeze_timer: Option<TimerId>,
}

impl DataBucket {
    /// Create an empty bucket.
    pub fn new(shared: SharedHandle, bucket: u64, level: u8) -> Self {
        DataBucket {
            shared,
            bucket,
            level,
            records: BTreeMap::new(),
            by_key: HashMap::new(),
            next_rank: 0,
            free_ranks: BinaryHeap::new(),
            overflow_reported: false,
            last_report_size: 0,
            delta_seq: 0,
            unacked: BTreeMap::new(),
            parity_acked: Vec::new(),
            retry_timer: None,
            retry_rounds: 0,
            last_min_acked: 0,
            replay: HashMap::new(),
            replay_lru: BTreeMap::new(),
            replay_gen: 0,
            last_split: None,
            last_merge: None,
            store: None,
            report_restart: false,
            catching_up: false,
            held: Vec::new(),
            suffixes_seen: 0,
            got_ack: false,
            catchup_timer: None,
            catchup_failed: false,
            frozen: false,
            frozen_held: Vec::new(),
            freeze_timer: None,
        }
    }

    /// Restore a bucket from recovered content (hot-spare installation).
    /// `delta_seq` resumes the column's Δ numbering where the lost bucket
    /// stopped, so surviving parity buckets recognise the continuation.
    pub fn from_content(
        shared: SharedHandle,
        bucket: u64,
        level: u8,
        next_rank: Rank,
        delta_seq: u64,
        records: Vec<(Rank, Key, Vec<u8>)>,
    ) -> Self {
        let mut b = DataBucket::new(shared, bucket, level);
        b.next_rank = next_rank;
        b.delta_seq = delta_seq;
        b.last_min_acked = delta_seq;
        for (rank, key, payload) in records {
            b.by_key.insert(key, rank);
            b.records.insert(rank, Record { key, payload });
        }
        // Ranks below `next_rank` not in use are reusable gaps.
        for r in 0..next_rank {
            if !b.records.contains_key(&r) {
                b.free_ranks.push(Reverse(r));
            }
        }
        b
    }

    /// Bucket-group number `g = ⌊bucket / m⌋`.
    pub fn group(&self) -> u64 {
        self.bucket / self.shared.cfg.group_size as u64
    }

    /// Reed–Solomon column index: offset within the group.
    pub fn col(&self) -> usize {
        crate::convert::to_index(self.bucket % self.shared.cfg.group_size as u64)
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the bucket holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate `(rank, key, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, Key, &[u8])> {
        self.records
            .iter()
            .map(|(r, rec)| (*r, rec.key, rec.payload.as_slice()))
    }

    /// Approximate payload bytes held.
    pub fn payload_bytes(&self) -> usize {
        self.records.values().map(|r| r.payload.len()).sum()
    }

    /// Attach a durable store; subsequent commits are logged to it.
    pub fn attach_store(&mut self, store: Box<dyn BucketStore>) {
        self.store = Some(store);
    }

    /// Whether a durable store is attached (driver/test introspection).
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Current Δ-stream position (next sequence to emit).
    pub fn delta_seq(&self) -> u64 {
        self.delta_seq
    }

    /// Flag set by [`crate::storage::recover`]: the boot `SelfReport`
    /// offers the coordinator a Δ-suffix catch-up.
    pub(crate) fn mark_restarted(&mut self) {
        self.report_restart = true;
    }

    /// Flush the store's buffered appends (the once-per-batch hook behind
    /// [`crate::FsyncPolicy::Batch`]). Returns how many buffered appends
    /// this sync made durable (the group-commit batch size; 0 when nothing
    /// was buffered, the store is absent, or the sync failed).
    pub fn sync_store(&mut self) -> u64 {
        if let Some(store) = self.store.as_mut() {
            let pending = store.unsynced_ops();
            if store.sync().is_err() {
                // Buffered appends may be gone: the log has a silent hole
                // and must never be replayed.
                self.reset_store();
                return 0;
            }
            return pending;
        }
        0
    }

    /// Erase and drop the store — on retirement (the logical bucket lives
    /// elsewhere now) and on any write failure (the log is holey or its
    /// base is stale). Either way this copy must not resurrect: erasing
    /// the snapshot makes `has_state`/`recover` fail, so the next boot
    /// goes Blank and through the full RS rebuild.
    pub(crate) fn reset_store(&mut self) {
        if let Some(store) = self.store.as_mut() {
            let _ = store.reset();
        }
        self.store = None;
    }

    /// This bucket's full state as shipped in recovery transfers.
    fn content(&self) -> ShardContent {
        ShardContent::Data {
            level: self.level,
            next_rank: self.next_rank,
            delta_seq: self.delta_seq,
            records: self
                .records
                .iter()
                .map(|(r, rec)| (*r, rec.key, rec.payload.clone()))
                .collect(),
        }
    }

    /// Write a snapshot and truncate the log (no-op without a store).
    /// Returns whether a snapshot was written.
    pub(crate) fn snapshot_now(&mut self) -> bool {
        if self.store.is_none() {
            return false;
        }
        let state = storage::encode_data_snapshot(self.bucket, &self.content());
        let ok = match self.store.as_mut() {
            Some(store) => store.snapshot(&state).is_ok(),
            None => false,
        };
        if !ok {
            // The log's base no longer matches RAM (e.g. the post-split
            // bulk removal was never snapshotted); replaying it would
            // resurrect diverged state that the Δ-suffix handshake could
            // then certify. Poison the store instead.
            self.reset_store();
        }
        ok
    }

    /// Snapshot with observability (structural events and the periodic
    /// policy both land here).
    fn snapshot_obs(&mut self, env: &mut Env<'_, Msg>) {
        let had_store = self.store.is_some();
        if self.snapshot_now() {
            env.obs().incr("wal_snapshots");
        } else if had_store {
            env.obs().incr("wal_errors");
        }
    }

    /// Append one op to the store, then snapshot if the policy says so.
    fn log_op(&mut self, env: &mut Env<'_, Msg>, op: &WalOp) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        let buf = storage::encode_op(op);
        match store.append(&buf) {
            Ok(()) => {
                env.obs().incr("wal_appends");
                env.obs().add("wal_bytes", buf.len() as u64);
            }
            Err(_) => {
                // A failing disk must not take the bucket down with it: the
                // RAM copy stays authoritative and keeps serving. But the
                // log now has a silent hole, so it must never be replayed —
                // poison the store so the next boot goes through the full
                // RS rebuild instead.
                env.obs().incr("wal_errors");
                self.reset_store();
                return;
            }
        }
        let every = self.shared.cfg.wal_snapshot_every;
        if every > 0 && store.appended_since_snapshot() >= every {
            self.snapshot_obs(env);
        }
    }

    /// Log the committed record at `rank` (insert or update).
    fn log_set(&mut self, env: &mut Env<'_, Msg>, rank: Rank, key: Key) {
        if self.store.is_none() {
            return;
        }
        let Some(payload) = self.records.get(&rank).map(|r| r.payload.clone()) else {
            return;
        };
        let op = WalOp::Set {
            rank,
            key,
            payload,
            delta_seq: self.delta_seq,
        };
        self.log_op(env, &op);
    }

    /// Log the committed delete of `rank`.
    fn log_del(&mut self, env: &mut Env<'_, Msg>, rank: Rank, key: Key) {
        if self.store.is_none() {
            return;
        }
        let op = WalOp::Del {
            rank,
            key,
            delta_seq: self.delta_seq,
        };
        self.log_op(env, &op);
    }

    /// Main message handler, called from the node dispatcher.
    pub fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
        // While catching up after a local-store restart, only catch-up and
        // liveness traffic flows; everything else is deferred so no write
        // can commit at a Δ-sequence the parity group already assigned.
        if self.catching_up {
            match &msg {
                Msg::DeltaSuffix { .. }
                | Msg::OwnershipAck
                | Msg::ParityAck { .. }
                | Msg::Probe { .. }
                | Msg::StateQuery
                | Msg::SelfReport => {}
                _ => {
                    // After an abort nothing is replayed — the coordinator's
                    // Retire is coming and held traffic would be stale.
                    if !self.catchup_failed {
                        self.held.push((from, msg));
                    }
                    return;
                }
            }
        }
        // While a recovery shard collection is in flight the coordinator
        // needs this column to hold still at the Δ-sequence it shipped in
        // `ShardData` — defer everything that would advance it (or move
        // records wholesale) until `ResumeWrites` or the safety timer.
        if self.frozen {
            let mutates = match &msg {
                Msg::Req { kind, .. } => !matches!(kind, ReqKind::Lookup(_)),
                Msg::DoSplit { .. }
                | Msg::SplitLoad { .. }
                | Msg::DoMerge { .. }
                | Msg::MergeLoad { .. } => true,
                _ => false,
            };
            if mutates {
                self.frozen_held.push((from, msg));
                return;
            }
        }
        match msg {
            Msg::Req {
                op_id,
                client,
                intended,
                hops,
                kind,
            } => self.handle_req(env, op_id, client, intended, hops, kind),
            Msg::DoSplit {
                source,
                target,
                new_level,
            } => self.handle_split(env, source, target, new_level),
            Msg::DoMerge {
                source,
                target,
                new_level,
            } => self.handle_merge(env, source, target, new_level),
            Msg::MergeLoad {
                level,
                records,
                replay,
                final_seq,
            } => {
                self.level = level;
                // A merge-driven absorb must not immediately re-split the
                // bucket (that would undo the shrink the file manager asked
                // for); a later insert can still report overflow.
                self.absorb_movers(env, records, replay, false);
                let coord = self.shared.registry.borrow().coordinator;
                env.send(
                    coord,
                    Msg::MergeDone {
                        bucket: self.bucket,
                        final_seq,
                    },
                );
            }
            Msg::SplitLoad {
                bucket,
                level,
                records,
                replay,
            } => {
                // Movers arriving at a freshly initialised bucket (or again,
                // if the shipment was duplicated — absorb dedups by key).
                // `level` is the sender's, not necessarily ours: an expel
                // shipment (see `expel_misplaced`) addresses at the
                // expeller's level, and absorb re-forwards any stray.
                debug_assert_eq!(bucket, self.bucket);
                let _ = level;
                self.absorb_movers(env, records, replay, true);
                let coord = self.shared.registry.borrow().coordinator;
                env.send(
                    coord,
                    Msg::SplitDone {
                        bucket: self.bucket,
                    },
                );
            }
            Msg::Scan {
                op_id,
                client,
                filter,
                assumed_level,
                reply_if_empty,
            } => {
                // Propagate to the buckets this scan's sender image does not
                // know about: for each level l the sender missed, the child
                // bucket created when this bucket split from l to l+1.
                let mut l = assumed_level;
                while l < self.level {
                    let child = self.bucket + (1u64 << l);
                    // A networked host's allocation-table snapshot can lag
                    // the sender's; drop the propagation then (the client's
                    // scan machinery retries a stalled scan).
                    let Some(node) = self.shared.registry.borrow().try_data_node(child) else {
                        l += 1;
                        continue;
                    };
                    env.send(
                        node,
                        Msg::Scan {
                            op_id,
                            client,
                            filter: filter.clone(),
                            assumed_level: l + 1,
                            reply_if_empty,
                        },
                    );
                    l += 1;
                }
                let hits: Vec<(Key, Vec<u8>)> = self
                    .records
                    .values()
                    .filter(|r| filter.matches(r.key, &r.payload))
                    .map(|r| (r.key, r.payload.clone()))
                    .collect();
                // Probabilistic termination: silent unless there are hits.
                if reply_if_empty || !hits.is_empty() {
                    env.send(
                        client,
                        Msg::ScanReply {
                            op_id,
                            bucket: self.bucket,
                            level: self.level,
                            hits,
                        },
                    );
                }
            }
            Msg::TransferShard { token } => {
                // Freeze (or re-arm an existing freeze — collection retries
                // re-send this) so the shipped Δ-sequence stays the truth
                // until the coordinator finishes the collection.
                self.freeze(env);
                let content = self.content();
                env.send(
                    from,
                    Msg::ShardData {
                        token,
                        shard: self.col(),
                        content,
                    },
                );
            }
            Msg::ResumeWrites { .. } => self.unfreeze(env),
            Msg::ReadCell { rank, token } => {
                let cell_len = self.shared.cfg.cell_len();
                let cell = self
                    .records
                    .get(&rank)
                    .map(|rec| encode_cell(&rec.payload, cell_len))
                    .unwrap_or_else(|| vec![0u8; cell_len]);
                env.send(
                    from,
                    Msg::CellData {
                        token,
                        shard: self.col(),
                        cell,
                    },
                );
            }
            Msg::Probe { token } => {
                env.send(
                    from,
                    Msg::ProbeAck {
                        token,
                        bucket: Some(self.bucket),
                    },
                );
            }
            Msg::StateQuery => {
                env.send(
                    from,
                    Msg::StateReply {
                        bucket: self.bucket,
                        level: self.level,
                    },
                );
            }
            Msg::SelfReport => {
                // Boot after an outage: check with the coordinator before
                // serving (the coordinator may have recreated this bucket
                // on a spare meanwhile).
                let coord = self.shared.registry.borrow().coordinator;
                if self.report_restart {
                    // Recovered from the local store: offer the Δ-suffix
                    // handshake. No write is served until the coordinator
                    // accepts (OwnershipAck) and every parity bucket has
                    // sent its suffix — otherwise a fresh commit could
                    // reuse a Δ-sequence the parity group already applied.
                    self.report_restart = false;
                    self.catching_up = true;
                    self.catchup_failed = false;
                    self.suffixes_seen = 0;
                    self.got_ack = false;
                    self.arm_catchup_watchdog(env);
                    env.send(
                        coord,
                        Msg::RestartReport {
                            bucket: self.bucket,
                            delta_seq: self.delta_seq,
                        },
                    );
                } else {
                    env.send(
                        coord,
                        Msg::CheckOwnership {
                            bucket: Some(self.bucket),
                            parity: None,
                        },
                    );
                }
            }
            Msg::OwnershipAck => {
                if self.catchup_failed {
                    // A certification racing our abort: the coordinator
                    // will process the abort and Retire us — resuming now
                    // would serve from the diverged replica it certifies
                    // against.
                    return;
                }
                if self.catching_up {
                    self.got_ack = true;
                    self.try_resume(env);
                }
                // Still the owner: resume serving. A crash dropped this
                // node's timers, so restart retransmission of any Δs that
                // were still unacknowledged.
                if self.shared.cfg.ack_parity
                    && !self.unacked.is_empty()
                    && self.retry_timer.is_none()
                {
                    self.retry_rounds = 0;
                    self.retry_timer = Some(env.set_timer(self.shared.cfg.delta_retransmit_us));
                }
            }
            Msg::DeltaSuffix {
                col,
                from_seq: _,
                entries,
                complete,
            } => self.handle_suffix(env, col, entries, complete),
            Msg::ParityAck { col, upto } => self.handle_parity_ack(env, from, col, upto),
            Msg::InitData { bucket, .. } if bucket == self.bucket => {
                // Duplicated provisioning order: already initialised.
            }
            Msg::Install {
                bucket: Some(b),
                token,
                ..
            } if b == self.bucket => {
                // Duplicated install whose InstallAck was lost: re-ack.
                env.send(from, Msg::InstallAck { token });
            }
            other => {
                debug_assert!(false, "data bucket {} got {:?}", self.bucket, other);
            }
        }
    }

    /// Timer callback: the catch-up watchdog, or retransmission of
    /// unacknowledged Δs (reliable mode).
    pub fn on_timer(&mut self, env: &mut Env<'_, Msg>, timer: TimerId) {
        if self.catchup_timer == Some(timer) {
            self.catchup_timer = None;
            if self.catching_up && !self.catchup_failed {
                // The Δ-suffix handshake wedged: a suffix or the ack never
                // arrived, and this bucket has been deferring all traffic
                // while still answering probes — invisible to everyone.
                // Give up and route through the full RS rebuild.
                self.abort_catchup(env);
            }
            return;
        }
        if self.freeze_timer == Some(timer) {
            // The coordinator never said `ResumeWrites` (lost frame, or it
            // died mid-recovery): serve writes again rather than wedge.
            self.freeze_timer = None;
            if self.frozen {
                env.obs().incr("recovery_freeze_expired");
            }
            self.unfreeze(env);
            return;
        }
        if self.retry_timer != Some(timer) {
            return; // stale timer from a cancelled round
        }
        self.retry_timer = None;
        if self.unacked.is_empty() {
            return;
        }
        let min = self.min_acked();
        if min > self.last_min_acked {
            self.retry_rounds = 0;
            self.last_min_acked = min;
        } else {
            self.retry_rounds += 1;
        }
        if self.retry_rounds > self.shared.cfg.delta_retry_limit {
            // No progress for too long: a dead parity bucket is the
            // recovery machinery's problem. Stop retransmitting (the timer
            // re-arms when an ack or a fresh Δ shows signs of life).
            return;
        }
        let group = self.group();
        let me = env.me();
        let parity_nodes: Vec<NodeId> = self.shared.registry.borrow().parity_nodes(group).to_vec();
        self.ensure_acked_slots(parity_nodes.len());
        for (q, pn) in parity_nodes.iter().enumerate() {
            let acked = self.parity_acked.get(q).copied().unwrap_or(0);
            let pending: Vec<DeltaEntry> = self
                .unacked
                .range(acked..)
                .map(|(_, e)| e.clone())
                .collect();
            if !pending.is_empty() {
                env.send(
                    *pn,
                    Msg::ParityBatch {
                        group,
                        entries: pending,
                        ack_to: Some(me),
                    },
                );
            }
        }
        self.retry_timer = Some(env.set_timer(self.shared.cfg.delta_retransmit_us));
    }

    /// Cumulative ack from parity column holder `from`: advance its
    /// watermark, prune Δs every parity bucket has, and manage the timer.
    fn handle_parity_ack(&mut self, env: &mut Env<'_, Msg>, from: NodeId, col: usize, upto: u64) {
        if col != self.col() {
            return; // stale ack addressed to a previous tenant of this node
        }
        let group = self.group();
        let parity_nodes: Vec<NodeId> = self.shared.registry.borrow().parity_nodes(group).to_vec();
        let Some(q) = parity_nodes.iter().position(|&n| n == from) else {
            return; // an ack from a since-replaced parity bucket
        };
        self.ensure_acked_slots(parity_nodes.len());
        if let Some(slot) = self.parity_acked.get_mut(q) {
            if upto > *slot {
                *slot = upto;
            }
        }
        let min = self.min_acked();
        self.unacked = self.unacked.split_off(&min);
        if min > self.last_min_acked {
            self.retry_rounds = 0;
            self.last_min_acked = min;
        }
        if self.unacked.is_empty() {
            if let Some(t) = self.retry_timer.take() {
                env.cancel_timer(t);
            }
        } else if self.retry_timer.is_none() && self.shared.cfg.ack_parity {
            // Progress after a give-up (or a post-crash ack): resume.
            self.retry_rounds = 0;
            self.retry_timer = Some(env.set_timer(self.shared.cfg.delta_retransmit_us));
        }
    }

    fn ensure_acked_slots(&mut self, k: usize) {
        if self.parity_acked.len() < k {
            self.parity_acked.resize(k, 0);
        }
    }

    /// The lowest ack watermark across the group's current parity buckets.
    fn min_acked(&mut self) -> u64 {
        let k = self.shared.registry.borrow().group_k(self.group());
        self.ensure_acked_slots(k);
        self.parity_acked
            .get(..k)
            .into_iter()
            .flatten()
            .copied()
            .min()
            .unwrap_or(self.delta_seq)
    }

    /// Record a write's outcome in the replay cache (LRU-bounded).
    fn remember(&mut self, client: NodeId, op_id: OpId, key: Key, result: OpResult) {
        let id = (client, op_id);
        self.replay_gen += 1;
        let gen = self.replay_gen;
        if let Some((_, _, old_gen)) = self.replay.insert(id, (key, result, gen)) {
            self.replay_lru.remove(&old_gen);
        }
        self.replay_lru.insert(gen, id);
        while self.replay.len() > self.shared.cfg.replay_cache_cap {
            let Some((_, coldest)) = self.replay_lru.pop_first() else {
                break; // maps out of sync only on a logic bug; never spin
            };
            self.replay.remove(&coldest);
        }
    }

    /// Look up a cached write outcome, refreshing the entry's recency so
    /// an id that is still being retried outlives colder entries.
    fn replay_hit(&mut self, client: NodeId, op_id: OpId) -> Option<OpResult> {
        let id = (client, op_id);
        let (_, result, gen) = self.replay.get_mut(&id)?;
        let result = result.clone();
        self.replay_gen += 1;
        let old_gen = std::mem::replace(gen, self.replay_gen);
        self.replay_lru.remove(&old_gen);
        self.replay_lru.insert(self.replay_gen, id);
        Some(result)
    }

    /// Number of entries currently in the replay cache (bounded by
    /// [`crate::Config::replay_cache_cap`]).
    pub fn replay_cache_len(&self) -> usize {
        self.replay.len()
    }

    fn handle_req(
        &mut self,
        env: &mut Env<'_, Msg>,
        op_id: u64,
        client: NodeId,
        _intended: u64,
        hops: u8,
        kind: ReqKind,
    ) {
        // Algorithm A2: verify this bucket is the correct address, forward
        // otherwise. N = 1 throughout LH*RS.
        match a2_route(self.bucket, self.level, kind.key(), 1) {
            A2Outcome::Forward(next) => {
                // With a lagging networked allocation table the forward
                // target may not be mapped yet: drop the request — the
                // client times out and retries against a fresher table.
                let Some(node) = self.shared.registry.borrow().try_data_node(next) else {
                    return;
                };
                env.send(
                    node,
                    Msg::Req {
                        op_id,
                        client,
                        intended: next,
                        hops: hops + 1,
                        kind,
                    },
                );
            }
            A2Outcome::Accept => {
                let iam = (hops > 0).then_some(Iam {
                    level: self.level,
                    bucket: self.bucket,
                });
                let ack_writes = self.shared.cfg.ack_writes;
                if let ReqKind::Lookup(key) = kind {
                    // Lookups are naturally idempotent: no replay cache.
                    let payload = self
                        .by_key
                        .get(&key)
                        .and_then(|r| self.records.get(r))
                        .map(|rec| rec.payload.clone());
                    env.send(
                        client,
                        Msg::Reply {
                            op_id,
                            result: OpResult::Value(payload),
                            iam,
                        },
                    );
                    return;
                }
                // A retried write the bucket already executed must not run
                // again (a re-run insert would report DuplicateKey, a re-run
                // delete NotFound, and each would double-commit parity Δs).
                // Answer duplicates from the replay cache instead.
                if let Some(result) = self.replay_hit(client, op_id) {
                    let is_err = matches!(result, OpResult::DuplicateKey | OpResult::NotFound);
                    if ack_writes || iam.is_some() || is_err {
                        env.send(client, Msg::Reply { op_id, result, iam });
                    }
                    return;
                }
                let (key, result) = match kind {
                    ReqKind::Lookup(_) => return, // replied above

                    ReqKind::Insert(key, payload) => {
                        let result = if self.by_key.contains_key(&key) {
                            OpResult::DuplicateKey
                        } else {
                            let rank = self.alloc_rank();
                            let cell = encode_cell(&payload, self.shared.cfg.cell_len());
                            self.by_key.insert(key, rank);
                            self.records.insert(rank, Record { key, payload });
                            self.emit_delta(env, rank, KeyOp::Add(key), cell);
                            self.log_set(env, rank, key);
                            self.maybe_report_overflow(env);
                            OpResult::Inserted
                        };
                        (key, result)
                    }
                    ReqKind::Update(key, new_payload) => {
                        let cell_len = self.shared.cfg.cell_len();
                        let result = match self
                            .by_key
                            .get(&key)
                            .copied()
                            .map(|rank| (rank, self.records.get_mut(&rank)))
                        {
                            None => OpResult::NotFound,
                            // by_key points at a missing rank: the bucket's
                            // index is inconsistent. Fail the write rather
                            // than abort; recovery rebuilds both maps.
                            Some((_, None)) => OpResult::Failed("bucket index inconsistent".into()),
                            Some((rank, Some(rec))) => {
                                let old_cell = encode_cell(&rec.payload, cell_len);
                                let new_cell = encode_cell(&new_payload, cell_len);
                                rec.payload = new_payload;
                                let delta = cell_delta(&old_cell, &new_cell);
                                self.emit_delta(env, rank, KeyOp::Keep, delta);
                                self.log_set(env, rank, key);
                                OpResult::Updated
                            }
                        };
                        (key, result)
                    }
                    ReqKind::Delete(key) => {
                        let result = match self
                            .by_key
                            .remove(&key)
                            .map(|r| (r, self.records.remove(&r)))
                        {
                            None => OpResult::NotFound,
                            Some((_, None)) => OpResult::Failed("bucket index inconsistent".into()),
                            Some((rank, Some(rec))) => {
                                self.free_ranks.push(Reverse(rank));
                                let cell = encode_cell(&rec.payload, self.shared.cfg.cell_len());
                                self.emit_delta(env, rank, KeyOp::Remove(key), cell);
                                self.log_del(env, rank, key);
                                OpResult::Deleted
                            }
                        };
                        (key, result)
                    }
                };
                self.remember(client, op_id, key, result.clone());
                // Error outcomes are always reported (even in unacked mode
                // the client must learn its optimistic write failed);
                // success replies only when acked or the image was stale.
                let is_err = matches!(result, OpResult::DuplicateKey | OpResult::NotFound);
                if ack_writes || iam.is_some() || is_err {
                    env.send(client, Msg::Reply { op_id, result, iam });
                }
            }
        }
    }

    /// Execute a split ordered by the coordinator: partition by
    /// `h_{new_level}`, ship movers, retract their parity contributions.
    fn handle_split(&mut self, env: &mut Env<'_, Msg>, source: u64, target: u64, new_level: u8) {
        debug_assert_eq!(source, self.bucket);
        if new_level <= self.level {
            // Duplicate order: the coordinator re-sent because SplitDone
            // never arrived. If the partition ran here, re-ship the cached
            // movers verbatim (re-running would emit fresh Δ seqs for work
            // the parity already saw). The receiver absorbs idempotently
            // and re-confirms.
            if let Some((cached_target, movers, replay)) = self.last_split.clone() {
                debug_assert_eq!(cached_target, target);
                let target_node = self.shared.registry.borrow().data_node(target);
                env.send(
                    target_node,
                    Msg::SplitLoad {
                        bucket: target,
                        level: self.level,
                        records: movers,
                        replay,
                    },
                );
                return;
            }
            // No cached shipment: this replica never ran the partition —
            // it was rebuilt from parity after its predecessor died with
            // the order in flight, and was installed at the coordinator's
            // (post-split) level with the movers still inside. Fall
            // through and partition now: the movers it still holds have
            // never been retracted from parity, so the fresh Δ seqs are
            // exactly right, and if it genuinely has nothing for the
            // target the shipment is an empty re-confirmation.
        }
        let cell_len = self.shared.cfg.cell_len();
        let mut movers = Vec::new();
        let mut removals = Vec::new();
        let moving_ranks: Vec<Rank> = self
            .records
            .iter()
            .filter(|(_, rec)| lhrs_lh::h(new_level, 1, rec.key) == target)
            .map(|(r, _)| *r)
            .collect();
        for rank in moving_ranks {
            let Some(rec) = self.records.remove(&rank) else {
                continue; // listed from this map just above
            };
            self.by_key.remove(&rec.key);
            self.free_ranks.push(Reverse(rank));
            removals.push(DeltaEntry {
                seq: self.next_seq(),
                rank,
                col: self.col(),
                key_op: KeyOp::Remove(rec.key),
                delta_cell: encode_cell(&rec.payload, cell_len),
            });
            movers.push(rec);
        }
        self.level = new_level;
        self.overflow_reported = false;
        self.last_report_size = 0;

        // Replay-cache entries follow their keys to the new bucket, so a
        // retried write that now routes there is still seen as a duplicate.
        let mut moving_ids: Vec<(NodeId, OpId)> = self
            .replay
            .iter()
            .filter(|(_, (key, _, _))| lhrs_lh::h(new_level, 1, *key) == target)
            .map(|(id, _)| *id)
            .collect();
        moving_ids.sort_unstable();
        let mut replay_movers = Vec::new();
        for id in moving_ids {
            if let Some((key, result, gen)) = self.replay.remove(&id) {
                self.replay_lru.remove(&gen);
                replay_movers.push(ReplayEntry {
                    client: id.0,
                    op_id: id.1,
                    key,
                    result,
                });
            }
        }

        // Retract movers from this group's parity (one batch per parity
        // bucket — the bulk-transfer optimisation of the paper).
        self.send_batch(env, removals);

        // Ship movers to the new bucket (which enrols them in its own
        // group's parity). Keep a copy for retransmission.
        self.last_split = Some((target, movers.clone(), replay_movers.clone()));
        let target_node = self.shared.registry.borrow().data_node(target);
        env.send(
            target_node,
            Msg::SplitLoad {
                bucket: target,
                level: new_level,
                records: movers,
                replay: replay_movers,
            },
        );
        // A split may leave this bucket still over capacity (skewed keys).
        self.maybe_report_overflow(env);
        // Structural change: snapshot rather than log the bulk removal.
        self.snapshot_obs(env);
    }

    /// Ship away records that do not address to this bucket at its level.
    /// A rebuilt bucket can hold such records: its predecessor died with a
    /// split order in flight, after the coordinator committed the address-
    /// space change but before the partition ran — the reconstruction then
    /// restores the movers into a bucket whose level says they belong
    /// elsewhere, where no lookup will ever find them. Retract each stray
    /// from this group's parity and ship it to its home bucket through the
    /// normal split-shipment path (the receiver absorbs idempotently).
    pub fn expel_misplaced(&mut self, env: &mut Env<'_, Msg>) {
        // Resolve each stray's home first: a record whose home this host's
        // registry replica cannot name yet stays put (still covered by
        // parity) instead of being retracted into nowhere.
        let foreign: Vec<(Rank, u64, NodeId)> = {
            let reg = self.shared.registry.borrow();
            self.records
                .iter()
                .filter_map(|(&rank, rec)| {
                    let home = lhrs_lh::h(self.level, 1, rec.key);
                    if home == self.bucket {
                        return None;
                    }
                    reg.try_data_node(home).map(|node| (rank, home, node))
                })
                .collect()
        };
        if foreign.is_empty() {
            return;
        }
        let cell_len = self.shared.cfg.cell_len();
        let mut removals = Vec::new();
        let mut by_home: BTreeMap<u64, (NodeId, Vec<Record>)> = BTreeMap::new();
        for (rank, home, node) in foreign {
            let Some(rec) = self.records.remove(&rank) else {
                continue; // listed from this map just above
            };
            self.by_key.remove(&rec.key);
            self.free_ranks.push(Reverse(rank));
            removals.push(DeltaEntry {
                seq: self.next_seq(),
                rank,
                col: self.col(),
                key_op: KeyOp::Remove(rec.key),
                delta_cell: encode_cell(&rec.payload, cell_len),
            });
            by_home
                .entry(home)
                .or_insert((node, Vec::new()))
                .1
                .push(rec);
        }
        self.send_batch(env, removals);
        let level = self.level;
        for (home, (node, records)) in by_home {
            env.obs()
                .add("recovery_expelled_records", records.len() as u64);
            env.send(
                node,
                Msg::SplitLoad {
                    bucket: home,
                    level,
                    records,
                    replay: Vec::new(),
                },
            );
        }
        self.snapshot_obs(env);
    }

    /// Receive records moved in by a split or merge: assign fresh ranks and
    /// enrol them in this group's parity. Records whose key is already
    /// present are duplicates from a retransmitted shipment and are skipped
    /// (absorbing them twice would double-count them in the parity).
    fn absorb_movers(
        &mut self,
        env: &mut Env<'_, Msg>,
        records: Vec<Record>,
        replay: Vec<ReplayEntry>,
        check_overflow: bool,
    ) {
        for e in replay {
            self.remember(e.client, e.op_id, e.key, e.result);
        }
        // An expel shipment addressed at the *sender's* level can carry
        // records this bucket has since split past: forward them onward
        // at our level (the chain terminates — each hop's address refines).
        let mut onward: BTreeMap<u64, (NodeId, Vec<Record>)> = BTreeMap::new();
        let cell_len = self.shared.cfg.cell_len();
        let mut additions = Vec::new();
        for rec in records {
            if self.by_key.contains_key(&rec.key) {
                continue; // duplicated shipment
            }
            let home = lhrs_lh::h(self.level, 1, rec.key);
            if home != self.bucket {
                let node = self.shared.registry.borrow().try_data_node(home);
                if let Some(node) = node {
                    onward.entry(home).or_insert((node, Vec::new())).1.push(rec);
                    continue;
                }
                // Unresolvable home: absorb locally rather than drop — the
                // record stays parity-covered, just unaddressable until a
                // later split re-partitions it.
            }
            let rank = self.alloc_rank();
            additions.push(DeltaEntry {
                seq: self.next_seq(),
                rank,
                col: self.col(),
                key_op: KeyOp::Add(rec.key),
                delta_cell: encode_cell(&rec.payload, cell_len),
            });
            self.by_key.insert(rec.key, rank);
            self.records.insert(rank, rec);
        }
        self.send_batch(env, additions);
        let level = self.level;
        for (home, (node, records)) in onward {
            env.send(
                node,
                Msg::SplitLoad {
                    bucket: home,
                    level,
                    records,
                    replay: Vec::new(),
                },
            );
        }
        if check_overflow {
            self.maybe_report_overflow(env);
        }
        // Structural change: snapshot rather than log the bulk arrival.
        self.snapshot_obs(env);
    }

    /// Execute a merge ordered by the coordinator: this bucket (the last
    /// one, `target`) retracts every record from its group's parity and
    /// ships them back to `source`. The node is retired afterwards.
    fn handle_merge(&mut self, env: &mut Env<'_, Msg>, source: u64, target: u64, new_level: u8) {
        debug_assert_eq!(target, self.bucket);
        if let Some((cached_source, lvl, movers, replay)) = self.last_merge.clone() {
            // Duplicate order (lost MergeLoad or MergeDone): re-ship the
            // cached movers; the absorber dedups by key and re-confirms.
            debug_assert_eq!(cached_source, source);
            let source_node = self.shared.registry.borrow().data_node(source);
            env.send(
                source_node,
                Msg::MergeLoad {
                    level: lvl,
                    records: movers,
                    replay,
                    final_seq: self.delta_seq,
                },
            );
            return;
        }
        let cell_len = self.shared.cfg.cell_len();
        let mut removals = Vec::new();
        let mut movers = Vec::new();
        let ranks: Vec<Rank> = self.records.keys().copied().collect();
        for rank in ranks {
            let Some(rec) = self.records.remove(&rank) else {
                continue; // listed from this map just above
            };
            self.by_key.remove(&rec.key);
            removals.push(DeltaEntry {
                seq: self.next_seq(),
                rank,
                col: self.col(),
                key_op: KeyOp::Remove(rec.key),
                delta_cell: encode_cell(&rec.payload, cell_len),
            });
            movers.push(rec);
        }
        // The whole replay cache follows the records (this bucket is
        // disappearing).
        let mut ids: Vec<(NodeId, OpId)> = self.replay.keys().copied().collect();
        ids.sort_unstable();
        self.replay_lru.clear();
        let mut replay_movers = Vec::new();
        for id in ids {
            if let Some((key, result, _)) = self.replay.remove(&id) {
                replay_movers.push(ReplayEntry {
                    client: id.0,
                    op_id: id.1,
                    key,
                    result,
                });
            }
        }
        self.send_batch(env, removals);
        self.last_merge = Some((source, new_level, movers.clone(), replay_movers.clone()));
        let source_node = self.shared.registry.borrow().data_node(source);
        env.send(
            source_node,
            Msg::MergeLoad {
                level: new_level,
                records: movers,
                replay: replay_movers,
                final_seq: self.delta_seq,
            },
        );
    }

    /// Resume this column's Δ numbering at `seq` (a re-created bucket must
    /// continue where its merged-away predecessor stopped — the parity
    /// channels were never reset).
    pub fn resume_delta_seq(&mut self, seq: u64) {
        debug_assert_eq!(self.delta_seq, 0, "only meaningful on a fresh bucket");
        self.delta_seq = seq;
        self.last_min_acked = seq;
    }

    /// Take the next Δ sequence number of this column's stream.
    fn next_seq(&mut self) -> u64 {
        let s = self.delta_seq;
        self.delta_seq += 1;
        s
    }

    /// Send one Δ-commit to every parity bucket of this group.
    fn emit_delta(
        &mut self,
        env: &mut Env<'_, Msg>,
        rank: Rank,
        key_op: KeyOp,
        delta_cell: Vec<u8>,
    ) {
        let group = self.group();
        let ack_to = self.shared.cfg.ack_parity.then(|| env.me());
        let parity_nodes: Vec<NodeId> = self.shared.registry.borrow().parity_nodes(group).to_vec();
        if parity_nodes.is_empty() {
            return;
        }
        let entry = DeltaEntry {
            seq: self.next_seq(),
            rank,
            col: self.col(),
            key_op,
            delta_cell,
        };
        env.obs().incr("deltas_emitted");
        env.trace(ObsEvent::DeltaCommit {
            bucket: self.bucket,
            bytes: entry.delta_cell.len() as u64,
            columns: parity_nodes.len() as u64,
        });
        if ack_to.is_some() {
            self.unacked.insert(entry.seq, entry.clone());
            self.arm_retry(env);
        }
        for pn in parity_nodes {
            env.send(
                pn,
                Msg::ParityDelta {
                    group,
                    entry: entry.clone(),
                    ack_to,
                },
            );
        }
    }

    /// Send a Δ batch to every parity bucket of this group, tracking the
    /// entries for retransmission in reliable mode.
    fn send_batch(&mut self, env: &mut Env<'_, Msg>, entries: Vec<DeltaEntry>) {
        if entries.is_empty() {
            return;
        }
        let group = self.group();
        let ack_to = self.shared.cfg.ack_parity.then(|| env.me());
        let parity_nodes: Vec<NodeId> = self.shared.registry.borrow().parity_nodes(group).to_vec();
        if parity_nodes.is_empty() {
            return;
        }
        env.obs().add("deltas_emitted", entries.len() as u64);
        env.trace(ObsEvent::DeltaCommit {
            bucket: self.bucket,
            bytes: entries.iter().map(|e| e.delta_cell.len() as u64).sum(),
            columns: parity_nodes.len() as u64,
        });
        if ack_to.is_some() {
            for e in &entries {
                self.unacked.insert(e.seq, e.clone());
            }
            self.arm_retry(env);
        }
        for pn in parity_nodes {
            env.send(
                pn,
                Msg::ParityBatch {
                    group,
                    entries: entries.clone(),
                    ack_to,
                },
            );
        }
    }

    /// Arm the retransmission timer if it is not already running.
    fn arm_retry(&mut self, env: &mut Env<'_, Msg>) {
        if self.retry_timer.is_none() {
            self.retry_rounds = 0;
            self.last_min_acked = self.min_acked();
            self.retry_timer = Some(env.set_timer(self.shared.cfg.delta_retransmit_us));
        }
    }

    fn alloc_rank(&mut self) -> Rank {
        if let Some(Reverse(r)) = self.free_ranks.pop() {
            r
        } else {
            let r = self.next_rank;
            self.next_rank += 1;
            r
        }
    }

    fn maybe_report_overflow(&mut self, env: &mut Env<'_, Msg>) {
        let len = self.records.len();
        if len <= self.shared.cfg.bucket_capacity {
            return;
        }
        // Report once; if the report (or the split order) was lost, the
        // bucket re-reports only after doubling in size again — in fault-free
        // runs the split always arrives long before that, so the report
        // stays effectively single-shot and the message cost model holds.
        if self.overflow_reported && len < 2 * self.last_report_size {
            return;
        }
        self.overflow_reported = true;
        self.last_report_size = len;
        env.obs().incr("overflow_reports");
        let coord = self.shared.registry.borrow().coordinator;
        env.send(
            coord,
            Msg::ReportOverflow {
                bucket: self.bucket,
                size: len,
            },
        );
    }

    /// Apply a Δ-suffix from one parity bucket: re-commit the ops this
    /// bucket lost between its log tail and the parity group's watermark.
    /// All `k` parity buckets ship the same column stream, so entries are
    /// applied exactly once by sequence (`seq == delta_seq` applies,
    /// anything older is a duplicate from another parity bucket).
    fn handle_suffix(
        &mut self,
        env: &mut Env<'_, Msg>,
        col: usize,
        entries: Vec<DeltaEntry>,
        complete: bool,
    ) {
        if col != self.col() || !self.catching_up || self.catchup_failed {
            return; // stale suffix addressed to a previous tenant
        }
        let cell_len = self.shared.cfg.cell_len();
        let mut applied = 0u64;
        let mut bytes = 0u64;
        for entry in entries {
            if entry.seq != self.delta_seq {
                continue; // duplicate (another parity's copy) or stale
            }
            bytes += entry.delta_cell.len() as u64;
            let entry_ok = match entry.key_op {
                KeyOp::Add(key) => {
                    // The Δ of an Add is the full cell (old was zero).
                    match decode_cell(&entry.delta_cell) {
                        None => false,
                        Some(payload) => {
                            self.by_key.insert(key, entry.rank);
                            self.records.insert(entry.rank, Record { key, payload });
                            self.next_rank = self.next_rank.max(entry.rank.saturating_add(1));
                            self.delta_seq = entry.seq + 1;
                            self.log_set(env, entry.rank, key);
                            true
                        }
                    }
                }
                KeyOp::Remove(key) => {
                    self.records.remove(&entry.rank);
                    self.by_key.remove(&key);
                    self.delta_seq = entry.seq + 1;
                    self.log_del(env, entry.rank, key);
                    true
                }
                KeyOp::Keep => match self.records.get_mut(&entry.rank) {
                    None => false,
                    Some(rec) => {
                        let old_cell = encode_cell(&rec.payload, cell_len);
                        let new_cell = cell_delta(&old_cell, &entry.delta_cell);
                        match decode_cell(&new_cell) {
                            None => false,
                            Some(payload) => {
                                let key = rec.key;
                                rec.payload = payload;
                                self.delta_seq = entry.seq + 1;
                                self.log_set(env, entry.rank, key);
                                true
                            }
                        }
                    }
                },
            };
            if !entry_ok {
                // The entry at exactly the resume point cannot be applied
                // (undecodable cell, or a Keep for a record this replica
                // never had): the certified watermark is unreachable, and
                // resuming below it would re-emit Δ-sequences the parity
                // group already consumed — permanent divergence. Give the
                // bucket up to the full RS rebuild instead.
                self.abort_catchup(env);
                return;
            }
            applied += 1;
        }
        if applied > 0 {
            env.obs().add("restart_suffix_entries", applied);
            env.obs().add("restart_suffix_bytes", bytes);
            env.trace(ObsEvent::RestartSuffix {
                bucket: self.bucket,
                entries: applied,
                bytes,
            });
        }
        // Count the reply regardless of content: an up-to-date bucket gets
        // k empty-but-complete suffixes. Incomplete replies still count —
        // the coordinator Retires us instead of acking in that case.
        let _ = complete;
        self.suffixes_seen += 1;
        self.try_resume(env);
    }

    /// How long a catch-up may stay wedged before the bucket gives up: the
    /// coordinator's full retry budget plus slack, so the bucket never
    /// aborts a handshake the coordinator is still driving.
    fn catchup_deadline_us(&self) -> u64 {
        self.shared
            .cfg
            .probe_timeout_us
            .saturating_mul(u64::from(self.shared.cfg.coord_retries).saturating_add(2))
    }

    /// Enter (or extend) the recovery write freeze: every mutation defers
    /// until [`Self::unfreeze`]. Re-armed on every `TransferShard` so a
    /// retried collection keeps its window open.
    fn freeze(&mut self, env: &mut Env<'_, Msg>) {
        self.frozen = true;
        if let Some(t) = self.freeze_timer.take() {
            env.cancel_timer(t);
        }
        // Long enough for several collection retry rounds, short enough
        // that a dead coordinator doesn't read as a dead bucket.
        let deadline = self.shared.cfg.coord_retransmit_us.saturating_mul(8);
        self.freeze_timer = Some(env.set_timer(deadline));
    }

    /// Leave the recovery write freeze and replay everything deferred.
    fn unfreeze(&mut self, env: &mut Env<'_, Msg>) {
        if let Some(t) = self.freeze_timer.take() {
            env.cancel_timer(t);
        }
        if !self.frozen {
            return;
        }
        self.frozen = false;
        let held = std::mem::take(&mut self.frozen_held);
        for (f, m) in held {
            self.on_message(env, f, m);
        }
    }

    /// (Re)arm the catch-up watchdog.
    fn arm_catchup_watchdog(&mut self, env: &mut Env<'_, Msg>) {
        if let Some(t) = self.catchup_timer.take() {
            env.cancel_timer(t);
        }
        self.catchup_timer = Some(env.set_timer(self.catchup_deadline_us()));
    }

    /// Give up on the Δ-suffix catch-up: the local replica cannot reach the
    /// certified watermark (inapplicable suffix entry) or the handshake
    /// wedged past the watchdog. Drop everything held, poison the store so
    /// no later boot replays this diverged state, and ask the coordinator
    /// to demote this node into the full RS rebuild.
    fn abort_catchup(&mut self, env: &mut Env<'_, Msg>) {
        self.catchup_failed = true;
        self.held.clear();
        if let Some(t) = self.catchup_timer.take() {
            env.cancel_timer(t);
        }
        self.reset_store();
        env.obs().incr("restart_aborts");
        let coord = self.shared.registry.borrow().coordinator;
        env.send(
            coord,
            Msg::RestartAbort {
                bucket: self.bucket,
            },
        );
    }

    /// Leave catch-up mode once the coordinator acked ownership and every
    /// parity bucket answered; replay everything held meanwhile.
    fn try_resume(&mut self, env: &mut Env<'_, Msg>) {
        if !self.catching_up || self.catchup_failed || !self.got_ack {
            return;
        }
        let k = self.shared.registry.borrow().group_k(self.group());
        if self.suffixes_seen < k {
            return;
        }
        self.catching_up = false;
        if let Some(t) = self.catchup_timer.take() {
            env.cancel_timer(t);
        }
        // The whole group stands at delta_seq now: nothing is in flight.
        self.unacked.clear();
        self.parity_acked.clear();
        self.ensure_acked_slots(k);
        for slot in self.parity_acked.iter_mut() {
            *slot = self.delta_seq;
        }
        self.last_min_acked = self.delta_seq;
        // Suffix entries may have re-filled ranks the snapshot had free.
        self.free_ranks.clear();
        for r in 0..self.next_rank {
            if !self.records.contains_key(&r) {
                self.free_ranks.push(Reverse(r));
            }
        }
        self.snapshot_obs(env);
        let held = std::mem::take(&mut self.held);
        for (f, m) in held {
            self.on_message(env, f, m);
        }
    }

    /// The insert counter (exposed for tests and recovery assertions).
    pub fn next_rank(&self) -> Rank {
        self.next_rank
    }

    /// The shared handle (used by the node dispatcher for retirement).
    pub(crate) fn shared_handle(&self) -> SharedHandle {
        self.shared.clone()
    }
}
