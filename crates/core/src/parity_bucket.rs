//! The parity-bucket server: Reed–Solomon parity records, Δ-commits, and
//! shard transfer for recovery.

use std::collections::{BTreeMap, HashMap};

use lhrs_sim::{Env, NodeId};

use crate::msg::{DeltaEntry, KeyOp, Msg, ShardContent};
use crate::record::cell_is_zero;
use crate::registry::SharedHandle;
use crate::{Key, Rank};

/// One parity record: the member keys of the record group (by column) and
/// the accumulated parity cell for this bucket's parity column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityRecord {
    /// Member keys by column; `None` = no member in that bucket.
    pub keys: Vec<Option<Key>>,
    /// The parity coding cell `Σ_c Γ[c][q] · cell_c`.
    pub cell: Vec<u8>,
}

/// A parity bucket: column `index` of the `k` parity buckets of one bucket
/// group.
pub struct ParityBucket {
    shared: SharedHandle,
    /// The bucket group this parity bucket protects.
    pub group: u64,
    /// Parity column index `q ∈ 0..k`.
    pub index: usize,
    /// The group's availability level when this bucket was provisioned.
    /// Only `coeff(col, index)` is consulted, and generator columns are
    /// prefix-stable in `k`, so a later `k` increase does not invalidate it.
    pub k: usize,
    code: crate::code::AnyCode,
    records: BTreeMap<Rank, ParityRecord>,
    /// Key → rank index — the "secondary index internal to each parity
    /// bucket" of §4.1, turning degraded-mode record location from a
    /// bucket scan into a hash probe. Key size is negligible next to the
    /// record size, so the overhead is inconsequential (as the paper
    /// argues).
    key_index: HashMap<Key, Rank>,
}

impl ParityBucket {
    /// Create an empty parity bucket.
    pub fn new(shared: SharedHandle, group: u64, index: usize, k: usize) -> Self {
        let m = shared.cfg.group_size;
        let code = crate::code::AnyCode::new(shared.cfg.field, m, k.max(index + 1))
            .expect("validated by Config");
        ParityBucket {
            shared,
            group,
            index,
            k,
            code,
            records: BTreeMap::new(),
            key_index: HashMap::new(),
        }
    }

    /// Restore from recovered content.
    pub fn from_content(
        shared: SharedHandle,
        group: u64,
        index: usize,
        k: usize,
        records: Vec<(Rank, Vec<Option<Key>>, Vec<u8>)>,
    ) -> Self {
        let mut p = ParityBucket::new(shared, group, index, k);
        for (rank, keys, cell) in records {
            for key in keys.iter().flatten() {
                p.key_index.insert(*key, rank);
            }
            p.records.insert(rank, ParityRecord { keys, cell });
        }
        p
    }

    /// Number of parity records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the bucket holds no parity records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over `(rank, record)`.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &ParityRecord)> {
        self.records.iter().map(|(r, rec)| (*r, rec))
    }

    /// Parity payload bytes held (cells only).
    pub fn parity_bytes(&self) -> usize {
        self.records.values().map(|r| r.cell.len()).sum()
    }

    /// The shared handle (used by the node dispatcher for retirement).
    pub(crate) fn shared_handle(&self) -> SharedHandle {
        self.shared.clone()
    }

    /// Main message handler.
    pub fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::ParityDelta { group, entry, ack_to } => {
                debug_assert_eq!(group, self.group);
                let rank = entry.rank;
                self.apply(entry);
                if let Some(ack) = ack_to {
                    env.send(ack, Msg::ParityAck { rank });
                }
            }
            Msg::ParityBatch { group, entries } => {
                debug_assert_eq!(group, self.group);
                for entry in entries {
                    self.apply(entry);
                }
            }
            Msg::FindRecord { key, token } => {
                // O(1) via the internal key index (§4.1); the index and the
                // key lists are maintained together, which the debug
                // assertion cross-checks.
                let found = self.key_index.get(&key).map(|rank| {
                    let rec = &self.records[rank];
                    debug_assert!(rec.keys.contains(&Some(key)), "index out of sync");
                    (*rank, rec.keys.clone())
                });
                env.send(from, Msg::FindRecordReply { token, found });
            }
            Msg::TransferShard { token } => {
                let m = self.shared.cfg.group_size;
                let content = ShardContent::Parity {
                    records: self
                        .records
                        .iter()
                        .map(|(r, rec)| (*r, rec.keys.clone(), rec.cell.clone()))
                        .collect(),
                };
                env.send(
                    from,
                    Msg::ShardData {
                        token,
                        shard: m + self.index,
                        content,
                    },
                );
            }
            Msg::ReadCell { rank, token } => {
                let cell_len = self.shared.cfg.cell_len();
                let cell = self
                    .records
                    .get(&rank)
                    .map(|rec| rec.cell.clone())
                    .unwrap_or_else(|| vec![0u8; cell_len]);
                let m = self.shared.cfg.group_size;
                env.send(
                    from,
                    Msg::CellData {
                        token,
                        shard: m + self.index,
                        cell,
                    },
                );
            }
            Msg::Probe { token } => {
                env.send(from, Msg::ProbeAck { token, bucket: None });
            }
            Msg::SelfReport => {
                let coord = self.shared.registry.borrow().coordinator;
                env.send(
                    coord,
                    Msg::CheckOwnership {
                        bucket: None,
                        parity: Some((self.group, self.index)),
                    },
                );
            }
            Msg::OwnershipAck => { /* still the owner: resume serving */ }
            other => {
                debug_assert!(
                    false,
                    "parity bucket ({}, {}) got {:?}",
                    self.group, self.index, other
                );
            }
        }
    }

    /// Fold one Δ into the parity record at `entry.rank`:
    /// `cell ^= Γ[col][index] · Δ`, plus the key-list effect.
    fn apply(&mut self, entry: DeltaEntry) {
        let m = self.shared.cfg.group_size;
        let cell_len = self.shared.cfg.cell_len();
        let rec = self.records.entry(entry.rank).or_insert_with(|| ParityRecord {
            keys: vec![None; m],
            cell: vec![0u8; cell_len],
        });
        match entry.key_op {
            KeyOp::Add(key) => {
                debug_assert!(rec.keys[entry.col].is_none(), "column already occupied");
                rec.keys[entry.col] = Some(key);
                self.key_index.insert(key, entry.rank);
            }
            KeyOp::Remove(key) => {
                debug_assert_eq!(rec.keys[entry.col], Some(key), "removing wrong member");
                rec.keys[entry.col] = None;
                self.key_index.remove(&key);
            }
            KeyOp::Keep => {
                debug_assert!(rec.keys[entry.col].is_some(), "update of absent member");
            }
        }
        self.code
            .apply_delta(entry.col, self.index, &entry.delta_cell, &mut rec.cell);
        // Garbage-collect empty record groups.
        if rec.keys.iter().all(Option::is_none) {
            debug_assert!(cell_is_zero(&rec.cell), "ghost parity after last removal");
            self.records.remove(&entry.rank);
        }
    }
}
