//! The parity-bucket server: Reed–Solomon parity records, Δ-commits, and
//! shard transfer for recovery.

use std::collections::{BTreeMap, HashMap, VecDeque};

use lhrs_sim::{Env, NodeId};

use crate::msg::{DeltaEntry, KeyOp, Msg, ShardContent};
use crate::record::cell_is_zero;
use crate::registry::SharedHandle;
use crate::storage::{self, BucketStore, WalOp};
use crate::{Key, Rank};

/// One parity record: the member keys of the record group (by column) and
/// the accumulated parity cell for this bucket's parity column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityRecord {
    /// Member keys by column; `None` = no member in that bucket.
    pub keys: Vec<Option<Key>>,
    /// The parity coding cell `Σ_c Γ[c][q] · cell_c`.
    pub cell: Vec<u8>,
}

/// One data column's Δ-stream state: the next sequence number this bucket
/// will apply, plus a buffer holding Δs the network delivered early.
///
/// Δs within a column do not commute (`Add` then `Remove` of the same rank
/// reversed is nonsense, and a double-applied XOR cancels itself), so each
/// column's stream is applied **exactly once, in order**: duplicates of
/// already-applied Δs are dropped, out-of-order arrivals wait for the gap
/// to fill (via the emitter's retransmission in `ack_parity` mode).
#[derive(Debug, Default, Clone)]
struct ColChannel {
    next_seq: u64,
    buffered: BTreeMap<u64, DeltaEntry>,
}

/// A parity bucket: column `index` of the `k` parity buckets of one bucket
/// group.
pub struct ParityBucket {
    shared: SharedHandle,
    /// The bucket group this parity bucket protects.
    pub group: u64,
    /// Parity column index `q ∈ 0..k`.
    pub index: usize,
    /// The group's availability level when this bucket was provisioned.
    /// Only `coeff(col, index)` is consulted, and generator columns are
    /// prefix-stable in `k`, so a later `k` increase does not invalidate it.
    pub k: usize,
    code: crate::code::AnyCode,
    records: BTreeMap<Rank, ParityRecord>,
    /// Per data column: Δ-stream admission state.
    channels: Vec<ColChannel>,
    /// Key → rank index — the "secondary index internal to each parity
    /// bucket" of §4.1, turning degraded-mode record location from a
    /// bucket scan into a hash probe. Key size is negligible next to the
    /// record size, so the overhead is inconsequential (as the paper
    /// argues).
    key_index: HashMap<Key, Rank>,
    /// Per data column: recently applied Δs (bounded by
    /// `delta_history_cap`), kept to serve Δ-suffix catch-up to restarting
    /// data buckets. Contiguous with `channels[col].next_seq` at the back.
    history: Vec<VecDeque<DeltaEntry>>,
    /// Durable store, when the file runs with persistence.
    store: Option<Box<dyn BucketStore>>,
}

impl ParityBucket {
    /// Create an empty parity bucket.
    pub fn new(shared: SharedHandle, group: u64, index: usize, k: usize) -> Self {
        let m = shared.cfg.group_size;
        let code = crate::code::AnyCode::new(shared.cfg.field, m, k.max(index + 1))
            .expect("validated by Config");
        ParityBucket {
            shared,
            group,
            index,
            k,
            code,
            records: BTreeMap::new(),
            channels: vec![ColChannel::default(); m],
            key_index: HashMap::new(),
            history: vec![VecDeque::new(); m],
            store: None,
        }
    }

    /// Restore from recovered content. `col_seqs` resumes each column's
    /// Δ stream where the snapshot left it (a retransmitted Δ the snapshot
    /// already contains is then recognised as a duplicate).
    pub fn from_content(
        shared: SharedHandle,
        group: u64,
        index: usize,
        k: usize,
        records: Vec<(Rank, Vec<Option<Key>>, Vec<u8>)>,
        col_seqs: Vec<u64>,
    ) -> Self {
        let mut p = ParityBucket::new(shared, group, index, k);
        for (chan, seq) in p.channels.iter_mut().zip(col_seqs) {
            chan.next_seq = seq;
        }
        for (rank, keys, cell) in records {
            for key in keys.iter().flatten() {
                p.key_index.insert(*key, rank);
            }
            p.records.insert(rank, ParityRecord { keys, cell });
        }
        p
    }

    /// Number of parity records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the bucket holds no parity records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over `(rank, record)`.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &ParityRecord)> {
        self.records.iter().map(|(r, rec)| (*r, rec))
    }

    /// Parity payload bytes held (cells only).
    pub fn parity_bytes(&self) -> usize {
        self.records.values().map(|r| r.cell.len()).sum()
    }

    /// The shared handle (used by the node dispatcher for retirement).
    pub(crate) fn shared_handle(&self) -> SharedHandle {
        self.shared.clone()
    }

    /// Attach a durable store; subsequent Δ-commits are logged to it.
    pub fn attach_store(&mut self, store: Box<dyn BucketStore>) {
        self.store = Some(store);
    }

    /// Whether a durable store is attached (driver/test introspection).
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Flush the store's buffered appends (the once-per-batch hook behind
    /// [`crate::FsyncPolicy::Batch`]). Returns how many buffered appends
    /// this sync made durable (0 when nothing was buffered, the store is
    /// absent, or the sync failed).
    pub fn sync_store(&mut self) -> u64 {
        if let Some(store) = self.store.as_mut() {
            let pending = store.unsynced_ops();
            if store.sync().is_err() {
                // Buffered appends may be gone: the log has a silent hole
                // and must never be replayed.
                self.reset_store();
                return 0;
            }
            return pending;
        }
        0
    }

    /// Erase and drop the store — on retirement (the logical parity column
    /// lives elsewhere now) and on any write failure (the log is holey or
    /// its base is stale). Either way this copy must not resurrect.
    pub(crate) fn reset_store(&mut self) {
        if let Some(store) = self.store.as_mut() {
            let _ = store.reset();
        }
        self.store = None;
    }

    /// This bucket's full state as shipped in recovery transfers.
    fn content(&self) -> ShardContent {
        ShardContent::Parity {
            records: self
                .records
                .iter()
                .map(|(r, rec)| (*r, rec.keys.clone(), rec.cell.clone()))
                .collect(),
            col_seqs: self.channels.iter().map(|c| c.next_seq).collect(),
        }
    }

    /// Write a snapshot and truncate the log (no-op without a store).
    /// Returns whether a snapshot was written.
    pub(crate) fn snapshot_now(&mut self) -> bool {
        if self.store.is_none() {
            return false;
        }
        let state =
            storage::encode_parity_snapshot(self.group, self.index, self.k, &self.content());
        let ok = match self.store.as_mut() {
            Some(store) => store.snapshot(&state).is_ok(),
            None => false,
        };
        if !ok {
            // The log's base no longer matches RAM; replaying it would
            // resurrect diverged state. Poison the store instead.
            self.reset_store();
        }
        ok
    }

    /// Snapshot with observability (the periodic policy lands here).
    fn snapshot_obs(&mut self, env: &mut Env<'_, Msg>) {
        let had_store = self.store.is_some();
        if self.snapshot_now() {
            env.obs().incr("wal_snapshots");
        } else if had_store {
            env.obs().incr("wal_errors");
        }
    }

    /// Log one applied Δ to the store, then snapshot if the policy says so.
    fn log_delta(&mut self, env: &mut Env<'_, Msg>, entry: &DeltaEntry) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        let buf = storage::encode_op(&WalOp::Delta(entry.clone()));
        match store.append(&buf) {
            Ok(()) => {
                env.obs().incr("wal_appends");
                env.obs().add("wal_bytes", buf.len() as u64);
            }
            Err(_) => {
                // A failing disk must not take the bucket down with it: the
                // RAM copy stays authoritative and keeps serving. But the
                // log now has a silent hole, so it must never be replayed —
                // poison the store so the next boot starts from nothing.
                env.obs().incr("wal_errors");
                self.reset_store();
                return;
            }
        }
        let every = self.shared.cfg.wal_snapshot_every;
        if every > 0 && store.appended_since_snapshot() >= every {
            self.snapshot_obs(env);
        }
    }

    /// Remember an applied Δ in the bounded per-column history — the window
    /// this bucket can serve as a Δ-suffix to a restarting data bucket.
    /// Applies happen strictly in column order, so each deque is contiguous
    /// and ends exactly at `channels[col].next_seq`.
    fn remember(&mut self, entry: DeltaEntry) {
        let cap = self.shared.cfg.delta_history_cap;
        let Some(hist) = self.history.get_mut(entry.col) else {
            return;
        };
        hist.push_back(entry);
        while hist.len() > cap {
            hist.pop_front();
        }
    }

    /// Drill hook: overwrite every retained history entry of column `col`
    /// with an undecodable delta cell (all 0xFF — the cell's length prefix
    /// then exceeds the cell), modelling a parity host whose suffix window
    /// rotted. The applied parity itself is untouched; only the catch-up
    /// service is poisoned, which is what the abort path must survive.
    pub(crate) fn corrupt_history(&mut self, col: usize) {
        if let Some(hist) = self.history.get_mut(col) {
            for e in hist.iter_mut() {
                for b in e.delta_cell.iter_mut() {
                    *b = 0xFF;
                }
            }
        }
    }

    /// Admit + apply one Δ during store replay. No re-logging (the entry
    /// came *from* the log); history is maintained so a restarted parity
    /// bucket can still serve suffixes over its replayed window.
    pub(crate) fn replay_entry(&mut self, entry: DeltaEntry) {
        for ready in self.admit(entry) {
            self.remember(ready.clone());
            self.apply(ready);
        }
    }

    /// Main message handler.
    pub fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::ParityDelta {
                group,
                entry,
                ack_to,
            } => {
                debug_assert_eq!(group, self.group);
                if !self.sender_owns_column(from, entry.col) {
                    return;
                }
                let col = entry.col;
                let mut applied = 0u64;
                for ready in self.admit(entry) {
                    self.log_delta(env, &ready);
                    self.remember(ready.clone());
                    self.apply(ready);
                    applied += 1;
                }
                env.obs().add("deltas_applied", applied);
                if let Some(ack) = ack_to {
                    let upto = self.channels[col].next_seq;
                    env.send(ack, Msg::ParityAck { col, upto });
                }
            }
            Msg::ParityBatch {
                group,
                entries,
                ack_to,
            } => {
                debug_assert_eq!(group, self.group);
                let mut cols = std::collections::BTreeSet::new();
                let mut applied = 0u64;
                for entry in entries {
                    if !self.sender_owns_column(from, entry.col) {
                        continue;
                    }
                    cols.insert(entry.col);
                    for ready in self.admit(entry) {
                        self.log_delta(env, &ready);
                        self.remember(ready.clone());
                        self.apply(ready);
                        applied += 1;
                    }
                }
                env.obs().add("deltas_applied", applied);
                if let Some(ack) = ack_to {
                    for col in cols {
                        let upto = self.channels[col].next_seq;
                        env.send(ack, Msg::ParityAck { col, upto });
                    }
                }
            }
            Msg::FindRecord { key, token } => {
                // O(1) via the internal key index (§4.1); the index and the
                // key lists are maintained together, which the debug
                // assertion cross-checks.
                let found = self.key_index.get(&key).map(|rank| {
                    let rec = &self.records[rank];
                    debug_assert!(rec.keys.contains(&Some(key)), "index out of sync");
                    (*rank, rec.keys.clone())
                });
                env.send(from, Msg::FindRecordReply { token, found });
            }
            Msg::TransferShard { token } => {
                let m = self.shared.cfg.group_size;
                env.send(
                    from,
                    Msg::ShardData {
                        token,
                        shard: m + self.index,
                        content: self.content(),
                    },
                );
            }
            Msg::SuffixPull {
                group,
                col,
                from_seq,
                target,
            } => {
                debug_assert_eq!(group, self.group);
                let next = self.channels.get(col).map(|c| c.next_seq).unwrap_or(0);
                // The history deque for a column is contiguous and ends at
                // `next`, so the suffix [from_seq, next) is servable iff its
                // filtered view starts exactly at `from_seq`.
                let entries: Vec<DeltaEntry> = self
                    .history
                    .get(col)
                    .map(|h| h.iter().filter(|e| e.seq >= from_seq).cloned().collect())
                    .unwrap_or_default();
                let complete = if from_seq >= next {
                    from_seq == next // nothing missed (or the puller is ahead: not ours to cover)
                } else {
                    entries.first().map(|e| e.seq) == Some(from_seq)
                };
                let entries = if complete { entries } else { Vec::new() };
                let count = entries.len() as u64;
                let bytes: u64 = entries.iter().map(|e| e.delta_cell.len() as u64).sum();
                let m = self.shared.cfg.group_size as u64;
                env.send(
                    target,
                    Msg::DeltaSuffix {
                        col,
                        from_seq,
                        entries,
                        complete,
                    },
                );
                env.send(
                    from,
                    Msg::SuffixInfo {
                        bucket: self.group * m + col as u64,
                        col,
                        next_seq: next,
                        covered: complete,
                        count,
                        bytes,
                    },
                );
            }
            Msg::ReadCell { rank, token } => {
                let cell_len = self.shared.cfg.cell_len();
                let cell = self
                    .records
                    .get(&rank)
                    .map(|rec| rec.cell.clone())
                    .unwrap_or_else(|| vec![0u8; cell_len]);
                let m = self.shared.cfg.group_size;
                env.send(
                    from,
                    Msg::CellData {
                        token,
                        shard: m + self.index,
                        cell,
                    },
                );
            }
            Msg::Probe { token } => {
                env.send(
                    from,
                    Msg::ProbeAck {
                        token,
                        bucket: None,
                    },
                );
            }
            Msg::SelfReport => {
                let coord = self.shared.registry.borrow().coordinator;
                env.send(
                    coord,
                    Msg::CheckOwnership {
                        bucket: None,
                        parity: Some((self.group, self.index)),
                    },
                );
            }
            Msg::OwnershipAck => { /* still the owner: resume serving */ }
            Msg::InitParity { group, index, .. } if group == self.group && index == self.index => {
                // Duplicated provisioning order (coordinator retransmission
                // racing the original): already initialised, nothing to do.
            }
            Msg::Install {
                group,
                index,
                token,
                ..
            } if group == self.group && index == Some(self.index) => {
                // Duplicated install: the first copy built this bucket (via
                // the Blank-node path); the coordinator is retransmitting
                // because our InstallAck was lost. Re-ack, don't rebuild.
                env.send(from, Msg::InstallAck { token });
            }
            other => {
                debug_assert!(
                    false,
                    "parity bucket ({}, {}) got {:?}",
                    self.group, self.index, other
                );
            }
        }
    }

    /// Fencing check: a Δ for column `col` is honoured only when it comes
    /// from the node the registry currently maps to that bucket. A node
    /// displaced by group recovery (failed or merely partitioned) keeps
    /// retransmitting until its Retire lands; accepting its stale stream
    /// would corrupt the rebuilt column's Δ channel. Columns beyond the
    /// current file size are accepted from anyone: during a merge the
    /// disappearing bucket's final retraction Δs can still be in flight
    /// when the registry shrinks.
    fn sender_owns_column(&self, from: NodeId, col: usize) -> bool {
        let m = self.shared.cfg.group_size as u64;
        let bucket = self.group * m + col as u64;
        let reg = self.shared.registry.borrow();
        if bucket as usize >= reg.data_count() {
            return true;
        }
        reg.data_node(bucket) == from
    }

    /// Admission control for one Δ: returns the entries now ready to apply,
    /// in stream order. A duplicate (seq already applied) yields nothing; a
    /// future Δ is buffered until the gap fills; the expected Δ is returned
    /// together with any buffered successors it unblocks.
    fn admit(&mut self, entry: DeltaEntry) -> Vec<DeltaEntry> {
        let chan = &mut self.channels[entry.col];
        match entry.seq.cmp(&chan.next_seq) {
            std::cmp::Ordering::Less => Vec::new(), // duplicate: drop
            std::cmp::Ordering::Greater => {
                chan.buffered.insert(entry.seq, entry);
                Vec::new()
            }
            std::cmp::Ordering::Equal => {
                let mut ready = vec![entry];
                chan.next_seq += 1;
                while let Some(e) = chan.buffered.remove(&chan.next_seq) {
                    chan.next_seq += 1;
                    ready.push(e);
                }
                ready
            }
        }
    }

    /// Fold one Δ into the parity record at `entry.rank`:
    /// `cell ^= Γ[col][index] · Δ`, plus the key-list effect.
    fn apply(&mut self, entry: DeltaEntry) {
        let m = self.shared.cfg.group_size;
        let cell_len = self.shared.cfg.cell_len();
        let rec = self
            .records
            .entry(entry.rank)
            .or_insert_with(|| ParityRecord {
                keys: vec![None; m],
                cell: vec![0u8; cell_len],
            });
        match entry.key_op {
            KeyOp::Add(key) => {
                debug_assert!(rec.keys[entry.col].is_none(), "column already occupied");
                rec.keys[entry.col] = Some(key);
                self.key_index.insert(key, entry.rank);
            }
            KeyOp::Remove(key) => {
                debug_assert_eq!(rec.keys[entry.col], Some(key), "removing wrong member");
                rec.keys[entry.col] = None;
                self.key_index.remove(&key);
            }
            KeyOp::Keep => {
                debug_assert!(rec.keys[entry.col].is_some(), "update of absent member");
            }
        }
        self.code
            .apply_delta(entry.col, self.index, &entry.delta_cell, &mut rec.cell);
        // Garbage-collect empty record groups.
        if rec.keys.iter().all(Option::is_none) {
            debug_assert!(cell_is_zero(&rec.cell), "ghost parity after last removal");
            self.records.remove(&entry.rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::registry::Shared;

    fn bucket() -> ParityBucket {
        let cfg = Config {
            group_size: 4,
            record_len: 8,
            ..Config::default()
        };
        ParityBucket::new(Shared::new(cfg), 0, 0, 1)
    }

    fn delta(seq: u64, col: usize, key: u64, cell_len: usize) -> DeltaEntry {
        DeltaEntry {
            seq,
            rank: seq,
            col,
            key_op: KeyOp::Add(key),
            delta_cell: vec![1u8; cell_len],
        }
    }

    #[test]
    fn admit_is_exactly_once_in_order() {
        let mut p = bucket();
        let cl = p.shared.cfg.cell_len();

        // In-order Δ applies immediately.
        let ready = p.admit(delta(0, 0, 10, cl));
        assert_eq!(ready.len(), 1);
        assert_eq!(p.channels[0].next_seq, 1);

        // Duplicate of an already-applied Δ is dropped.
        assert!(p.admit(delta(0, 0, 10, cl)).is_empty());
        assert_eq!(p.channels[0].next_seq, 1);

        // A future Δ is buffered, not applied.
        assert!(p.admit(delta(3, 0, 13, cl)).is_empty());
        assert!(p.admit(delta(2, 0, 12, cl)).is_empty());
        assert_eq!(p.channels[0].next_seq, 1);

        // Filling the gap releases the whole contiguous run, in order.
        let ready = p.admit(delta(1, 0, 11, cl));
        let seqs: Vec<u64> = ready.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(p.channels[0].next_seq, 4);
        assert!(p.channels[0].buffered.is_empty());

        // A duplicate of a buffered-then-applied Δ is also dropped.
        assert!(p.admit(delta(2, 0, 12, cl)).is_empty());
    }

    #[test]
    fn admit_channels_are_independent_per_column() {
        let mut p = bucket();
        let cl = p.shared.cfg.cell_len();
        assert_eq!(p.admit(delta(0, 0, 1, cl)).len(), 1);
        // Column 1 starts at seq 0 regardless of column 0's progress.
        assert!(p.admit(delta(1, 1, 2, cl)).is_empty());
        assert_eq!(p.admit(delta(0, 1, 3, cl)).len(), 2);
        assert_eq!(p.channels[0].next_seq, 1);
        assert_eq!(p.channels[1].next_seq, 2);
    }

    #[test]
    fn from_content_resumes_streams() {
        let p0 = bucket();
        let shared = p0.shared.clone();
        let mut p = ParityBucket::from_content(shared, 0, 0, 1, Vec::new(), vec![5, 0, 2, 0]);
        let cl = p.shared.cfg.cell_len();
        // Δs below the restored watermark are recognised as duplicates.
        assert!(p.admit(delta(4, 0, 9, cl)).is_empty());
        assert_eq!(p.admit(delta(5, 0, 9, cl)).len(), 1);
        assert_eq!(p.admit(delta(2, 2, 9, cl)).len(), 1);
    }
}
