//! Checked integer narrowing for the actor hot paths.
//!
//! The panic-freedom lint bans bare `as` narrowing in hot-path modules: a
//! truncated bucket number or shard index silently addresses the *wrong*
//! bucket, which is worse than a crash. These helpers make the conversion
//! policy explicit at the call site.

/// Narrow a `u64` to `usize` for indexing, saturating on (32-bit-target)
/// overflow. Saturation composes with `.get(...)`: an absurd value indexes
/// past the end and surfaces as a lookup miss instead of aborting or, far
/// worse, wrapping around to a valid-but-wrong slot.
#[inline]
pub(crate) fn to_index(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_index_is_identity_in_range_and_saturates() {
        assert_eq!(to_index(0), 0);
        assert_eq!(to_index(4096), 4096);
        // On 64-bit targets u64::MAX fits; either way the result is MAX.
        assert_eq!(to_index(u64::MAX), usize::MAX);
    }
}
