//! The unified key-value client API.
//!
//! [`KvClient`] is the one trait every LH\*RS access path implements: the
//! in-process simulated driver ([`crate::LhrsFile`]) and the networked
//! client (`lhrs_net::client::NetClient`). Code written against it — the
//! examples, load generators, drills — runs unchanged over the simulator
//! or a real TCP cluster.
//!
//! Every operation returns an [`OpOutcome`], a self-describing result that
//! folds the transport-specific error shapes (`Result<_, Error>` in the
//! driver, timeout `Option`s on the network) into one enum.

use crate::msg::{ClientOp, FilterSpec, OpResult};
use crate::Key;

/// The outcome of one key-value operation, shared by every [`KvClient`]
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A write (insert, update, or delete) committed.
    Done,
    /// Lookup result: the payload, or `None` for a definitive
    /// unsuccessful search.
    Value(Option<Vec<u8>>),
    /// Scan result: all matching records, sorted by key.
    Hits(Vec<(Key, Vec<u8>)>),
    /// Insert rejected: the key already exists.
    DuplicateKey,
    /// Update or delete of a non-existent key.
    NotFound,
    /// The operation failed (unrecoverable group, timeout, ...).
    Failed(String),
}

impl OpOutcome {
    /// Whether the operation committed (`Done`, any `Value`, or `Hits`).
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            OpOutcome::Done | OpOutcome::Value(_) | OpOutcome::Hits(_)
        )
    }

    /// The looked-up payload, if this is a successful `Value(Some(..))`.
    pub fn into_value(self) -> Option<Vec<u8>> {
        match self {
            OpOutcome::Value(v) => v,
            _ => None,
        }
    }

    /// The scan hits, if this is a `Hits` outcome (empty otherwise).
    pub fn into_hits(self) -> Vec<(Key, Vec<u8>)> {
        match self {
            OpOutcome::Hits(h) => h,
            _ => Vec::new(),
        }
    }

    /// Map a protocol-level [`OpResult`] into the client-facing outcome.
    pub fn from_result(result: OpResult) -> OpOutcome {
        match result {
            OpResult::Inserted | OpResult::Updated | OpResult::Deleted => OpOutcome::Done,
            OpResult::DuplicateKey => OpOutcome::DuplicateKey,
            OpResult::NotFound => OpOutcome::NotFound,
            OpResult::Value(v) => OpOutcome::Value(v),
            OpResult::ScanHits(h) => OpOutcome::Hits(h),
            OpResult::Failed(e) => OpOutcome::Failed(e),
        }
    }
}

impl From<OpResult> for OpOutcome {
    fn from(result: OpResult) -> OpOutcome {
        OpOutcome::from_result(result)
    }
}

/// The unified LH\*RS key-value client.
///
/// Implemented by [`crate::LhrsFile`] (operations run the discrete-event
/// simulation to quiescence) and by `lhrs_net::client::NetClient`
/// (operations block on a live TCP cluster up to its configured
/// per-operation timeout).
pub trait KvClient {
    /// Insert a record.
    fn insert(&mut self, key: Key, payload: Vec<u8>) -> OpOutcome;
    /// Key search.
    fn lookup(&mut self, key: Key) -> OpOutcome;
    /// Replace the payload of an existing record.
    fn update(&mut self, key: Key, payload: Vec<u8>) -> OpOutcome;
    /// Delete a record.
    fn delete(&mut self, key: Key) -> OpOutcome;
    /// Parallel scan with a server-side filter.
    fn scan(&mut self, filter: FilterSpec) -> OpOutcome;

    /// Execute a batch of operations; `outcome[i]` answers `ops[i]`.
    ///
    /// The default runs the batch sequentially, one blocking operation at
    /// a time — correct everywhere. Pipelined transports (the multiplexed
    /// `lhrs_net::client::NetClient`) override it to keep a bounded window
    /// of operations in flight and complete them out of order.
    fn run_batch(&mut self, ops: Vec<ClientOp>) -> Vec<OpOutcome> {
        ops.into_iter()
            .map(|op| match op {
                ClientOp::Insert { key, payload } => self.insert(key, payload),
                ClientOp::Lookup { key } => self.lookup(key),
                ClientOp::Update { key, payload } => self.update(key, payload),
                ClientOp::Delete { key } => self.delete(key),
                ClientOp::Scan { filter } => self.scan(filter),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_mapping_covers_every_result() {
        assert_eq!(OpOutcome::from_result(OpResult::Inserted), OpOutcome::Done);
        assert_eq!(OpOutcome::from_result(OpResult::Updated), OpOutcome::Done);
        assert_eq!(OpOutcome::from_result(OpResult::Deleted), OpOutcome::Done);
        assert_eq!(
            OpOutcome::from_result(OpResult::DuplicateKey),
            OpOutcome::DuplicateKey
        );
        assert_eq!(
            OpOutcome::from_result(OpResult::NotFound),
            OpOutcome::NotFound
        );
        assert_eq!(
            OpOutcome::from_result(OpResult::Value(Some(b"x".to_vec()))),
            OpOutcome::Value(Some(b"x".to_vec()))
        );
        assert!(OpOutcome::from_result(OpResult::ScanHits(Vec::new())).is_ok());
        assert!(!OpOutcome::from_result(OpResult::Failed("e".into())).is_ok());
    }

    #[test]
    fn accessors() {
        assert_eq!(
            OpOutcome::Value(Some(b"v".to_vec())).into_value(),
            Some(b"v".to_vec())
        );
        assert_eq!(OpOutcome::Done.into_value(), None);
        let hits = vec![(1u64, b"a".to_vec())];
        assert_eq!(OpOutcome::Hits(hits.clone()).into_hits(), hits);
        assert!(OpOutcome::NotFound.into_hits().is_empty());
    }
}
