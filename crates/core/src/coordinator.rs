//! The coordinator: file state, split sequencing, scalable availability,
//! failure detection, degraded-mode record recovery, and multi-bucket group
//! recovery by erasure decoding.
//!
//! One coordinator per file, assumed available (the papers' standing
//! assumption; coordinator replication is orthogonal and out of scope).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use lhrs_lh::FileState;
use lhrs_obs::Event as ObsEvent;
use lhrs_sim::{Env, NodeId, Payload, TimerId};

use crate::code::AnyCode;

use crate::msg::{Msg, OpId, OpResult, ReqKind, ShardContent};
use crate::record::decode_cell;
use crate::registry::SharedHandle;
use crate::{Key, Rank, UpgradeMode};

/// Observable coordinator events, consumed by the driver and the tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordEvent {
    /// A split completed (bucket created).
    Split {
        /// Splitting bucket.
        source: u64,
        /// New bucket.
        target: u64,
        /// Bucket count after the split.
        buckets: u64,
    },
    /// The scalable-availability rule raised the file availability level.
    KIncreased {
        /// The new file-wide `k`.
        k: usize,
    },
    /// A group finished upgrading to a higher `k`.
    GroupUpgraded {
        /// The group.
        group: u64,
        /// Its new availability level.
        k: usize,
    },
    /// Failure(s) confirmed in a group.
    FailureDetected {
        /// The group.
        group: u64,
        /// Failed shard indices (`0..m` data, `m..` parity).
        shards: Vec<usize>,
    },
    /// A group was fully rebuilt onto spares.
    GroupRecovered {
        /// The group.
        group: u64,
        /// Shards rebuilt.
        shards: Vec<usize>,
    },
    /// More shards failed than the group's `k` tolerates.
    GroupUnrecoverable {
        /// The group.
        group: u64,
        /// Number of failed shards.
        failed: usize,
    },
    /// A bucket merge completed (file shrank by one bucket).
    Merged {
        /// The absorbing bucket.
        source: u64,
        /// The removed bucket.
        target: u64,
        /// Bucket count after the merge.
        buckets: u64,
    },
    /// File state `(n, i)` reconstructed from a bucket scan.
    StateRecovered {
        /// Recovered split pointer.
        n: u64,
        /// Recovered file level.
        i: u8,
    },
    /// A rebuild collected its shards but found no spare nodes to install
    /// them on; the attempt was abandoned (a later suspect retries, and
    /// lookups are served in degraded mode meanwhile).
    RecoveryStalled {
        /// The group.
        group: u64,
        /// Spare nodes the rebuild needed.
        needed: usize,
    },
    /// The coordinator hit a state it believes impossible (a stale token, a
    /// malformed reply, an out-of-range shard index). Instead of aborting —
    /// which would take the whole file's control plane down with it — the
    /// offending operation is dropped and this event records what happened
    /// so the driver/operator can see the degradation.
    InvariantViolated {
        /// Where the violation was detected (static context string).
        context: String,
    },
    /// A restarted data bucket was re-admitted after replaying its local
    /// store and catching up on the Δ-suffix it missed — the cheap
    /// recovery path that avoids a full RS rebuild.
    BucketRestarted {
        /// The bucket.
        bucket: u64,
        /// Δ-suffix entries it had to catch up (0 = it was already
        /// current).
        suffix_len: u64,
    },
}

/// Outstanding liveness probe for one node.
struct ProbeCtx {
    bucket: u64,
    pending: Vec<(OpId, NodeId, ReqKind)>,
    timer: TimerId,
    /// Probe rounds sent so far. A node is only declared dead after
    /// `coord_retries` unanswered rounds — one lost probe (or ack) must not
    /// trigger a spurious recovery.
    attempts: u32,
}

/// Outstanding group audit: probing every shard of a group.
struct GroupCheckCtx {
    group: u64,
    /// shard index → node probed.
    probed: Vec<(usize, NodeId)>,
    responded: HashSet<usize>,
    timer: TimerId,
    /// Re-probe rounds (non-responders only) before the verdict.
    attempts: u32,
}

/// Why shards are being collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    /// Rebuild failed shards onto spares.
    Repair,
    /// Extend the group's parity to a higher `k`.
    Upgrade,
}

/// Outstanding shard collection for one group.
struct RecoveryCtx {
    group: u64,
    purpose: Purpose,
    /// Group availability level used for the code (target level for
    /// upgrades).
    k: usize,
    /// Shard indices being rebuilt.
    rebuild: Vec<usize>,
    /// Shard indices we are waiting to receive.
    awaiting: HashSet<usize>,
    collected: HashMap<usize, ShardContent>,
    /// Install acks outstanding: token → shard index.
    installs: HashMap<u64, usize>,
    /// Install messages kept verbatim for retransmission: token → (spare,
    /// message).
    install_msgs: HashMap<u64, (NodeId, Msg)>,
    /// Spare node per rebuilt shard.
    spares: HashMap<usize, NodeId>,
    /// Retransmission timer (armed for the whole collection + install
    /// lifetime; cancelled on completion).
    timer: TimerId,
    /// Retransmission rounds so far.
    attempts: u32,
}

/// Degraded-mode record read in progress.
struct DegradedCtx {
    group: u64,
    op_id: OpId,
    client: NodeId,
    key: Key,
    stage: DegradedStage,
    timer: TimerId,
    attempts: u32,
}

enum DegradedStage {
    AwaitFind {
        /// The parity bucket asked (for retransmission).
        pnode: NodeId,
    },
    AwaitCells {
        target_col: usize,
        rank: Rank,
        /// Shards asked for cells (for retransmission).
        requested: Vec<(usize, NodeId)>,
        cells: HashMap<usize, Vec<u8>>,
        need: usize,
    },
}

/// An ordered split awaiting `SplitDone`, with everything needed to re-issue
/// the orders if they (or the confirmation) were lost.
struct SplitCtx {
    source: u64,
    target: u64,
    new_level: u8,
    /// Δ-stream resume point passed in the target's InitData.
    seq0: u64,
    /// InitParity orders for a group this split created, re-sent alongside
    /// (they carry no ack of their own).
    init_parity: Vec<(NodeId, Msg)>,
    timer: TimerId,
    attempts: u32,
}

/// An ordered merge awaiting `MergeDone`.
struct MergeCtx {
    source: u64,
    target: u64,
    new_level: u8,
    token: u64,
    timer: TimerId,
    attempts: u32,
}

/// Outstanding Δ-suffix catch-up handshake for one restarted data bucket.
struct SuffixCtx {
    group: u64,
    col: usize,
    bucket: u64,
    /// The restarting node: `SuffixPull` target, `OwnershipAck` (or
    /// `Retire`) recipient.
    node: NodeId,
    /// The Δ-stream position the bucket replayed from its local store.
    from_seq: u64,
    /// Parity answers so far, keyed by the answering parity node.
    infos: HashMap<NodeId, SuffixReply>,
    /// Answers needed (the group's parity count when the pull went out).
    expected: usize,
    timer: TimerId,
    attempts: u32,
}

/// One parity bucket's answer to a `SuffixPull`.
#[derive(Clone, Copy)]
struct SuffixReply {
    next_seq: u64,
    covered: bool,
    bytes: u64,
}

/// File-state recovery scan in progress.
struct StateRecCtx {
    expected: usize,
    /// Replies keyed by bucket — a duplicated `StateReply` must not count
    /// twice toward completion.
    replies: BTreeMap<u64, u8>,
    token: u64,
    timer: TimerId,
    attempts: u32,
}

/// The LH\*RS coordinator actor.
pub struct Coordinator {
    shared: SharedHandle,
    /// The authoritative file state `(n, i)`.
    pub state: FileState,
    /// Current file-wide availability level.
    pub k_file: usize,
    /// Per-group availability level (index = group).
    pub group_k: Vec<usize>,
    pool: Vec<NodeId>,
    thresholds_crossed: usize,
    /// Confirmed-failed shards: (group, shard index).
    failed: HashSet<(u64, usize)>,
    /// Groups declared unrecoverable.
    pub dead_groups: HashSet<u64>,
    next_token: u64,
    probes: HashMap<u64, ProbeCtx>,
    checks: HashMap<u64, GroupCheckCtx>,
    recoveries: HashMap<u64, RecoveryCtx>,
    degraded: HashMap<u64, DegradedCtx>,
    /// Δ-suffix catch-up handshakes in flight, keyed by token.
    suffixes: HashMap<u64, SuffixCtx>,
    /// Tokens owned by timers.
    timer_tokens: HashMap<TimerId, u64>,
    /// group → ops parked until the group heals.
    queued_ops: HashMap<u64, Vec<(OpId, NodeId, ReqKind)>>,
    /// Groups the check machinery is already looking at (per token).
    checking_groups: HashSet<u64>,
    /// Overflow reports waiting for the coordinator to go idle, one split
    /// owed per report (the paper's split policy). Runaway growth under
    /// slow networks is bounded by the pool guard in `do_split`, not here.
    deferred_splits: u64,
    outstanding_splits: u64,
    /// Ordered splits awaiting confirmation, keyed by token.
    splits: HashMap<u64, SplitCtx>,
    /// In-flight merge awaiting MergeDone.
    outstanding_merge: Option<MergeCtx>,
    upgrade_queue: VecDeque<u64>,
    /// Final Δ sequence of merged-away buckets, keyed by bucket number: a
    /// regrow split re-creating the bucket resumes its column's stream here
    /// (parity channels are never reset).
    col_floors: HashMap<u64, u64>,
    /// Groups lagging behind `k_file` (lazy mode).
    lagging: HashSet<u64>,
    state_rec: Option<StateRecCtx>,
    /// Event log for the driver: `(simulated time µs, event)`.
    pub events: Vec<(u64, CoordEvent)>,
}

impl Coordinator {
    /// Build the coordinator for a freshly created file. The registry must
    /// already map bucket 0 and group 0's parity; `pool` is the free node
    /// list.
    pub fn new(shared: SharedHandle, pool: Vec<NodeId>) -> Self {
        let k = shared.cfg.initial_k;
        Coordinator {
            shared,
            state: FileState::new(1),
            k_file: k,
            group_k: vec![k],
            pool,
            thresholds_crossed: 0,
            failed: HashSet::new(),
            dead_groups: HashSet::new(),
            next_token: 1,
            probes: HashMap::new(),
            checks: HashMap::new(),
            recoveries: HashMap::new(),
            degraded: HashMap::new(),
            suffixes: HashMap::new(),
            timer_tokens: HashMap::new(),
            queued_ops: HashMap::new(),
            checking_groups: HashSet::new(),
            deferred_splits: 0,
            outstanding_splits: 0,
            splits: HashMap::new(),
            outstanding_merge: None,
            upgrade_queue: VecDeque::new(),
            col_floors: HashMap::new(),
            lagging: HashSet::new(),
            state_rec: None,
            events: Vec::new(),
        }
    }

    /// Free nodes remaining in the pool.
    pub fn pool_remaining(&self) -> usize {
        self.pool.len()
    }

    /// Whether any structural work (splits, checks, recoveries, upgrades)
    /// is in flight.
    pub fn busy(&self) -> bool {
        self.outstanding_splits > 0
            || self.outstanding_merge.is_some()
            || !self.checks.is_empty()
            || !self.recoveries.is_empty()
            || !self.degraded.is_empty()
            || !self.suffixes.is_empty()
            || !self.upgrade_queue.is_empty()
            || self.deferred_splits > 0
    }

    fn m(&self) -> usize {
        self.shared.cfg.group_size
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Pop a spare node. Callers check `pool.len()` up front and reserve
    /// enough nodes for the whole operation, so `None` here means the
    /// reservation arithmetic is wrong — an invariant violation the caller
    /// surfaces as a [`CoordEvent::InvariantViolated`] instead of aborting.
    fn alloc_node(&mut self) -> Option<NodeId> {
        self.pool.pop()
    }

    /// Record an invariant violation as a degraded-mode event. The
    /// coordinator drops the operation that tripped it and keeps serving;
    /// the event stream is the audit trail.
    fn invariant_violated(&mut self, env: &mut Env<'_, Msg>, context: &str) {
        env.obs().incr("invariant_violations");
        env.trace(ObsEvent::InvariantViolated {
            context: context.to_string(),
        });
        self.events.push((
            env.now(),
            CoordEvent::InvariantViolated {
                context: context.to_string(),
            },
        ));
    }

    /// Existing data buckets of `group` (the file may not have grown the
    /// whole group yet).
    fn existing_cols(&self, group: u64) -> usize {
        let m = self.m() as u64;
        let total = self.state.bucket_count();
        let start = group * m;
        crate::convert::to_index(total.saturating_sub(start).min(m))
    }

    /// Main message handler.
    pub fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::ReportOverflow { .. } => {
                if self.busy() {
                    self.deferred_splits += 1;
                } else {
                    self.do_split(env);
                }
            }
            Msg::SplitDone { bucket } => {
                // Only account a split we are actually waiting for: a
                // duplicated confirmation must not unbalance the counter.
                let token = self
                    .splits
                    .iter()
                    .find(|(_, s)| s.target == bucket)
                    .map(|(t, _)| *t);
                if let Some(ctx) = token.and_then(|t| self.splits.remove(&t)) {
                    env.cancel_timer(ctx.timer);
                    self.timer_tokens.remove(&ctx.timer);
                    self.outstanding_splits = self.outstanding_splits.saturating_sub(1);
                    env.obs().incr("splits_completed");
                    env.trace(ObsEvent::SplitEnd {
                        bucket: ctx.source,
                        new_bucket: ctx.target,
                    });
                    self.drain_queues(env);
                }
            }
            Msg::ForceMerge => self.do_merge(env),
            Msg::MergeDone { final_seq, .. } => self.finish_merge(env, final_seq),
            Msg::Suspect {
                op_id,
                client,
                bucket: _,
                kind,
            } => self.handle_suspect(env, op_id, client, kind),
            Msg::ProbeAck { token, .. } => self.handle_probe_ack(env, token, from),
            Msg::CheckGroup { group } => {
                if group < self.group_k.len() as u64 && !self.checking_groups.contains(&group) {
                    self.start_group_check(env, group);
                }
            }
            Msg::ShardData {
                token,
                shard,
                content,
            } => self.handle_shard_data(env, token, shard, content),
            Msg::InstallAck { token } => self.handle_install_ack(env, token),
            Msg::FindRecordReply { token, found } => self.handle_find_reply(env, token, found),
            Msg::CellData { token, shard, cell } => self.handle_cell_data(env, token, shard, cell),
            Msg::RecoverFileState => {
                if self.state_rec.is_some() {
                    return; // duplicated trigger: scan already running
                }
                let nodes = self.shared.registry.borrow().all_data_nodes();
                let token = self.token();
                let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
                self.timer_tokens.insert(timer, token);
                self.state_rec = Some(StateRecCtx {
                    expected: nodes.len(),
                    replies: BTreeMap::new(),
                    token,
                    timer,
                    attempts: 0,
                });
                for n in nodes {
                    env.send(n, Msg::StateQuery);
                }
            }
            Msg::StateReply { bucket, level } => {
                let done = if let Some(ctx) = self.state_rec.as_mut() {
                    ctx.replies.insert(bucket, level);
                    ctx.replies.len() == ctx.expected
                } else {
                    false
                };
                if let Some(ctx) = if done { self.state_rec.take() } else { None } {
                    env.cancel_timer(ctx.timer);
                    self.timer_tokens.remove(&ctx.timer);
                    let pairs: Vec<(u64, u8)> = ctx.replies.into_iter().collect();
                    let (n, i) = recompute_state(&pairs);
                    match FileState::from_parts(n, i, 1) {
                        Some(state) => {
                            self.state = state;
                            self.events
                                .push((env.now(), CoordEvent::StateRecovered { n, i }));
                        }
                        None => {
                            // The survivors' reports recompose into an
                            // impossible (n, i); keep the current state and
                            // leave an audit trail rather than install it.
                            self.invariant_violated(env, "recovered file state inconsistent");
                        }
                    }
                }
            }
            Msg::CheckOwnership { bucket, parity } => {
                let reg = self.shared.registry.borrow();
                let (still_owner, loc) = match (bucket, parity) {
                    (Some(b), None) => (
                        crate::convert::to_index(b) < reg.data_count() && reg.data_node(b) == from,
                        (
                            b / self.m() as u64,
                            crate::convert::to_index(b % self.m() as u64),
                        ),
                    ),
                    (None, Some((g, q))) => {
                        (reg.parity_nodes(g).get(q) == Some(&from), (g, self.m() + q))
                    }
                    _ => {
                        debug_assert!(false, "malformed ownership claim");
                        return;
                    }
                };
                drop(reg);
                if still_owner {
                    // §2.5.4: restarted with correct data and never
                    // replaced — resume. Clear any failure suspicion.
                    self.failed.remove(&loc);
                    env.send(from, Msg::OwnershipAck);
                } else {
                    // The bucket was recreated elsewhere: the comeback node
                    // is demoted to a hot spare. A duplicated claim must not
                    // pool the same node twice (it would be allocated to two
                    // roles at once).
                    env.send(from, Msg::Retire);
                    if !self.pool.contains(&from) {
                        self.pool.push(from);
                    }
                }
            }
            Msg::RestartReport { bucket, delta_seq } => {
                self.handle_restart_report(env, from, bucket, delta_seq)
            }
            Msg::SuffixInfo {
                bucket,
                col: _,
                next_seq,
                covered,
                count: _,
                bytes,
            } => self.handle_suffix_info(env, from, bucket, next_seq, covered, bytes),
            Msg::RestartAbort { bucket } => self.handle_restart_abort(env, from, bucket),
            Msg::ParityAck { .. } => {}
            other => {
                debug_assert!(false, "coordinator got {:?}", other);
            }
        }
        // `from` is only used for debug assertions today.
        let _ = from;
    }

    /// Timer handler: probe / group-check timeouts and retransmission
    /// rounds for every in-flight protocol exchange. Anything the
    /// coordinator sends that expects an answer is re-sent up to
    /// `coord_retries` times before the exchange is abandoned, so a lost
    /// message (or lost reply) only costs latency.
    pub fn on_timer(&mut self, env: &mut Env<'_, Msg>, timer: TimerId) {
        let Some(token) = self.timer_tokens.remove(&timer) else {
            return;
        };
        let retries = self.shared.cfg.coord_retries;

        if let Some(mut probe) = self.probes.remove(&token) {
            if probe.attempts < retries {
                // Re-probe: one lost probe must not fake a death.
                probe.attempts += 1;
                let node = self.shared.registry.borrow().data_node(probe.bucket);
                env.send(node, Msg::Probe { token });
                probe.timer = env.set_timer(self.shared.cfg.probe_timeout_us);
                self.timer_tokens.insert(probe.timer, token);
                self.probes.insert(token, probe);
                return;
            }
            // The addressed bucket is dead: remember the ops and audit its
            // whole group.
            let group = probe.bucket / self.m() as u64;
            self.queue_ops(group, probe.pending);
            if !self.checking_groups.contains(&group) {
                self.start_group_check(env, group);
            }
            return;
        }

        if let Some(mut check) = self.checks.remove(&token) {
            let silent: Vec<NodeId> = check
                .probed
                .iter()
                .filter(|(s, _)| !check.responded.contains(s))
                .map(|(_, n)| *n)
                .collect();
            if check.attempts < retries && !silent.is_empty() {
                check.attempts += 1;
                for node in silent {
                    env.send(node, Msg::Probe { token });
                }
                check.timer = env.set_timer(self.shared.cfg.probe_timeout_us);
                self.timer_tokens.insert(check.timer, token);
                self.checks.insert(token, check);
                return;
            }
            self.finish_group_check(env, check);
            return;
        }

        if self.recoveries.contains_key(&token) {
            self.retry_recovery(env, token);
            return;
        }

        if self.splits.contains_key(&token) {
            self.retry_split(env, token);
            return;
        }

        if self
            .outstanding_merge
            .as_ref()
            .is_some_and(|m| m.token == token)
        {
            self.retry_merge(env);
            return;
        }

        if self.state_rec.as_ref().is_some_and(|s| s.token == token) {
            self.retry_state_rec(env);
            return;
        }

        if self.degraded.contains_key(&token) {
            self.retry_degraded(env, token);
            return;
        }

        if self.suffixes.contains_key(&token) {
            self.retry_suffix(env, token);
        }
    }

    /// Park ops for a group, without duplicating an op already parked (a
    /// duplicated Suspect or a probe round can offer the same op twice).
    fn queue_ops(&mut self, group: u64, ops: Vec<(OpId, NodeId, ReqKind)>) {
        let queued = self.queued_ops.entry(group).or_default();
        for (op_id, client, kind) in ops {
            if !queued.iter().any(|(o, c, _)| *o == op_id && *c == client) {
                queued.push((op_id, client, kind));
            }
        }
    }

    /// Re-send whatever a recovery is still waiting on: `TransferShard` to
    /// the shards not yet collected, then the pending `Install`s verbatim.
    /// After `coord_retries` fruitless rounds the recovery is abandoned and
    /// the group re-audited (the survivor set may have changed under us).
    fn retry_recovery(&mut self, env: &mut Env<'_, Msg>, token: u64) {
        let retries = self.shared.cfg.coord_retries;
        let give_up = match self.recoveries.get_mut(&token) {
            Some(ctx) => {
                ctx.attempts += 1;
                ctx.attempts > retries
            }
            None => return,
        };
        if give_up {
            let Some(ctx) = self.recoveries.remove(&token) else {
                return;
            };
            // Whatever froze for this collection must not stay frozen
            // until its safety timer: the collection is dead.
            self.resume_group_writes(env, ctx.group, &ctx.rebuild);
            match ctx.purpose {
                Purpose::Repair => {
                    // Survivors stopped answering; audit the group afresh.
                    if !self.checking_groups.contains(&ctx.group) {
                        self.start_group_check(env, ctx.group);
                    }
                }
                Purpose::Upgrade => {
                    if !self.upgrade_queue.contains(&ctx.group) {
                        self.upgrade_queue.push_back(ctx.group);
                    }
                }
            }
            self.drain_queues(env);
            return;
        }
        let m = self.m();
        let Some(ctx) = self.recoveries.get(&token) else {
            return;
        };
        let reg = self.shared.registry.borrow();
        let mut sends: Vec<(NodeId, Msg)> = Vec::new();
        for &shard in &ctx.awaiting {
            let node = if shard < m {
                reg.data_node(ctx.group * m as u64 + shard as u64)
            } else {
                // A shard index beyond the parity set means the group
                // shrank under us; skip it — the give-up path re-audits.
                match reg.parity_nodes(ctx.group).get(shard - m) {
                    Some(n) => *n,
                    None => continue,
                }
            };
            sends.push((node, Msg::TransferShard { token }));
        }
        for (spare, msg) in ctx.install_msgs.values() {
            sends.push((*spare, msg.clone()));
        }
        drop(reg);
        for (node, msg) in sends {
            env.send(node, msg);
        }
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        if let Some(ctx) = self.recoveries.get_mut(&token) {
            ctx.timer = timer;
        }
    }

    /// Re-issue a split's orders (InitParity for a freshly created group,
    /// InitData for the target, DoSplit to the source). All three are
    /// idempotent at their receivers, and the source re-ships its cached
    /// SplitLoad verbatim, so re-ordering a split is always safe.
    fn retry_split(&mut self, env: &mut Env<'_, Msg>, token: u64) {
        let retries = self.shared.cfg.coord_retries;
        let give_up = match self.splits.get_mut(&token) {
            Some(ctx) => {
                ctx.attempts += 1;
                ctx.attempts > retries
            }
            None => return,
        };
        if give_up {
            // Give up: unblock the queue and audit the target's group.
            let Some(ctx) = self.splits.remove(&token) else {
                return;
            };
            self.outstanding_splits = self.outstanding_splits.saturating_sub(1);
            let group = ctx.target / self.m() as u64;
            if !self.checking_groups.contains(&group) {
                self.start_group_check(env, group);
            }
            self.drain_queues(env);
            return;
        }
        let Some(ctx) = self.splits.get(&token) else {
            return;
        };
        let reg = self.shared.registry.borrow();
        let target_node = reg.data_node(ctx.target);
        let source_node = reg.data_node(ctx.source);
        drop(reg);
        for (node, msg) in &ctx.init_parity {
            env.send(*node, msg.clone());
        }
        env.send(
            target_node,
            Msg::InitData {
                bucket: ctx.target,
                level: ctx.new_level,
                delta_seq: ctx.seq0,
            },
        );
        env.send(
            source_node,
            Msg::DoSplit {
                source: ctx.source,
                target: ctx.target,
                new_level: ctx.new_level,
            },
        );
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        if let Some(ctx) = self.splits.get_mut(&token) {
            ctx.timer = timer;
        }
    }

    /// Re-order an unconfirmed merge (DoMerge and the downstream MergeLoad
    /// are both idempotent); abandoned after `coord_retries` rounds.
    fn retry_merge(&mut self, env: &mut Env<'_, Msg>) {
        let retries = self.shared.cfg.coord_retries;
        let Some(ctx) = self.outstanding_merge.as_mut() else {
            return;
        };
        ctx.attempts += 1;
        if ctx.attempts > retries {
            self.outstanding_merge = None;
            self.drain_queues(env);
            return;
        }
        let (source, target, new_level, token) = (ctx.source, ctx.target, ctx.new_level, ctx.token);
        let target_node = self.shared.registry.borrow().data_node(target);
        env.send(
            target_node,
            Msg::DoMerge {
                source,
                target,
                new_level,
            },
        );
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        if let Some(ctx) = self.outstanding_merge.as_mut() {
            ctx.timer = timer;
        }
    }

    /// Re-query the buckets that have not answered a file-state scan.
    fn retry_state_rec(&mut self, env: &mut Env<'_, Msg>) {
        let retries = self.shared.cfg.coord_retries;
        let Some(ctx) = self.state_rec.as_mut() else {
            return;
        };
        ctx.attempts += 1;
        if ctx.attempts > retries {
            self.state_rec = None;
            return;
        }
        let token = ctx.token;
        let missing: Vec<NodeId> = {
            let reg = self.shared.registry.borrow();
            (0..reg.data_count() as u64)
                .filter(|b| !ctx.replies.contains_key(b))
                .map(|b| reg.data_node(b))
                .collect()
        };
        for node in missing {
            env.send(node, Msg::StateQuery);
        }
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        if let Some(ctx) = self.state_rec.as_mut() {
            ctx.timer = timer;
        }
    }

    /// Re-drive a degraded read: re-ask the parity bucket (AwaitFind) or
    /// re-request the cells still missing (AwaitCells). After
    /// `coord_retries` rounds the lookup fails cleanly — the client's own
    /// retry may still land once the group is rebuilt.
    fn retry_degraded(&mut self, env: &mut Env<'_, Msg>, token: u64) {
        let retries = self.shared.cfg.coord_retries;
        let give_up = match self.degraded.get_mut(&token) {
            Some(ctx) => {
                ctx.attempts += 1;
                ctx.attempts > retries
            }
            None => return,
        };
        if give_up {
            let Some(ctx) = self.degraded.remove(&token) else {
                return;
            };
            env.send(
                ctx.client,
                Msg::Reply {
                    op_id: ctx.op_id,
                    result: OpResult::Failed("degraded read timed out".into()),
                    iam: None,
                },
            );
            self.drain_queues(env);
            return;
        }
        let Some(ctx) = self.degraded.get(&token) else {
            return;
        };
        let mut sends: Vec<(NodeId, Msg)> = Vec::new();
        match &ctx.stage {
            DegradedStage::AwaitFind { pnode } => {
                sends.push((
                    *pnode,
                    Msg::FindRecord {
                        key: ctx.key,
                        token,
                    },
                ));
            }
            DegradedStage::AwaitCells {
                rank,
                requested,
                cells,
                ..
            } => {
                for (shard, node) in requested {
                    if !cells.contains_key(shard) {
                        sends.push((*node, Msg::ReadCell { rank: *rank, token }));
                    }
                }
            }
        }
        for (node, msg) in sends {
            env.send(node, msg);
        }
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        if let Some(ctx) = self.degraded.get_mut(&token) {
            ctx.timer = timer;
        }
    }

    // ----- splits and availability scaling -----

    fn do_split(&mut self, env: &mut Env<'_, Msg>) {
        let m = self.m() as u64;

        // Out of spare nodes: drop the split rather than panic. The
        // overflowing bucket keeps serving (just over capacity) and will
        // re-report as it grows, so the split retries once nodes free up.
        // Checked before `state.split()` commits the address-space change;
        // the next bucket number is always the current count, so the
        // new-group test is exact.
        let next_target = self.state.bucket_count();
        let needed = 1 + if self.group_k.len() as u64 <= next_target / m {
            self.k_file
        } else {
            0
        };
        if self.pool.len() < needed {
            return;
        }

        let plan = self.state.split();
        let target_group = plan.target / m;

        // Provision parity for a group touched for the first time. The
        // InitParity orders are remembered on the split context so a lost
        // one is re-sent with the split orders (Blank nodes buffer traffic
        // until initialised, so a late init is harmless).
        let mut init_parity: Vec<(NodeId, Msg)> = Vec::new();
        if self.group_k.len() as u64 <= target_group {
            debug_assert_eq!(self.group_k.len() as u64, target_group);
            let k = self.k_file;
            let mut nodes = Vec::with_capacity(k);
            for q in 0..k {
                let Some(n) = self.alloc_node() else {
                    self.invariant_violated(
                        env,
                        "node pool ran dry mid-split despite the up-front reservation check",
                    );
                    return;
                };
                let msg = Msg::InitParity {
                    group: target_group,
                    index: q,
                    k,
                };
                env.send(n, msg.clone());
                init_parity.push((n, msg));
                nodes.push(n);
            }
            self.shared
                .registry
                .borrow_mut()
                .set_parity(target_group, nodes);
            self.group_k.push(k);
        }

        // Lazy upgrades: a touched lagging group catches up now.
        let source_group = plan.source / m;
        if self.shared.cfg.upgrade_mode == UpgradeMode::Lazy {
            for g in [source_group, target_group] {
                if self.lagging.remove(&g) {
                    self.upgrade_queue.push_back(g);
                }
            }
        }

        // Create the new bucket and order the split.
        let seq0 = self.col_floors.remove(&plan.target).unwrap_or(0);
        let Some(target_node) = self.alloc_node() else {
            self.invariant_violated(
                env,
                "node pool ran dry mid-split despite the up-front reservation check",
            );
            return;
        };
        env.send(
            target_node,
            Msg::InitData {
                bucket: plan.target,
                level: plan.new_level,
                delta_seq: seq0,
            },
        );
        self.shared
            .registry
            .borrow_mut()
            .push_data(plan.target, target_node);
        let source_node = self.shared.registry.borrow().data_node(plan.source);
        env.send(
            source_node,
            Msg::DoSplit {
                source: plan.source,
                target: plan.target,
                new_level: plan.new_level,
            },
        );
        self.outstanding_splits += 1;
        let token = self.token();
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        self.splits.insert(
            token,
            SplitCtx {
                source: plan.source,
                target: plan.target,
                new_level: plan.new_level,
                seq0,
                init_parity,
                timer,
                attempts: 0,
            },
        );
        env.obs().incr("splits_started");
        env.trace(ObsEvent::SplitStart {
            bucket: plan.source,
        });
        self.events.push((
            env.now(),
            CoordEvent::Split {
                source: plan.source,
                target: plan.target,
                buckets: self.state.bucket_count(),
            },
        ));

        // Scalable availability: raise k when M crosses the next threshold.
        let m_now = self.state.bucket_count();
        while self
            .shared
            .cfg
            .scale_thresholds
            .get(self.thresholds_crossed)
            .is_some_and(|&t| m_now > t)
        {
            self.thresholds_crossed += 1;
            self.k_file += 1;
            self.events
                .push((env.now(), CoordEvent::KIncreased { k: self.k_file }));
            match self.shared.cfg.upgrade_mode {
                UpgradeMode::Eager => {
                    let k_file = self.k_file;
                    let behind: Vec<u64> = self
                        .group_k
                        .iter()
                        .enumerate()
                        .filter(|(_, &k)| k < k_file)
                        .map(|(g, _)| g as u64)
                        .collect();
                    for g in behind {
                        if !self.upgrade_queue.contains(&g) {
                            self.upgrade_queue.push_back(g);
                        }
                    }
                }
                UpgradeMode::Lazy => {
                    let k_file = self.k_file;
                    let behind: Vec<u64> = self
                        .group_k
                        .iter()
                        .enumerate()
                        .filter(|(_, &k)| k < k_file)
                        .map(|(g, _)| g as u64)
                        .collect();
                    self.lagging.extend(behind);
                }
            }
        }
    }

    /// Undo the last split: order the last bucket to fold back into its
    /// split source. Ignored while other structural work is in flight or
    /// at the initial size.
    fn do_merge(&mut self, env: &mut Env<'_, Msg>) {
        if self.busy() || self.state.bucket_count() <= 1 {
            return;
        }
        let Some(plan) = self.state.merge() else {
            return;
        };
        // plan.target is the disappearing bucket, plan.source absorbs;
        // both end at level new_level - 1.
        let target_node = self.shared.registry.borrow().data_node(plan.target);
        let token = self.token();
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        self.outstanding_merge = Some(MergeCtx {
            source: plan.source,
            target: plan.target,
            new_level: plan.new_level - 1,
            token,
            timer,
            attempts: 0,
        });
        env.send(
            target_node,
            Msg::DoMerge {
                source: plan.source,
                target: plan.target,
                new_level: plan.new_level - 1,
            },
        );
    }

    /// The absorbing bucket confirmed: retire the ex-bucket's node (and the
    /// last group's parity nodes if the group emptied) back into the pool.
    fn finish_merge(&mut self, env: &mut Env<'_, Msg>, final_seq: u64) {
        let Some(ctx) = self.outstanding_merge.take() else {
            return;
        };
        env.cancel_timer(ctx.timer);
        self.timer_tokens.remove(&ctx.timer);
        let (source, target) = (ctx.source, ctx.target);
        self.col_floors.insert(target, final_seq);
        let m = self.m() as u64;
        let mut reg = self.shared.registry.borrow_mut();
        let ex_node = reg.pop_data();
        env.send(ex_node, Msg::Retire);
        self.pool.push(ex_node);
        // If the removed bucket was the sole member of the last group, the
        // group's (now record-free) parity buckets are decommissioned too.
        if target % m == 0 {
            debug_assert_eq!(self.group_k.len() as u64, target / m + 1);
            for pn in reg.pop_parity_group() {
                env.send(pn, Msg::Retire);
                self.pool.push(pn);
            }
            self.group_k.pop();
            self.lagging.remove(&(target / m));
            // The group's parity state is gone with its buckets: any Δ
            // floors recorded for this group's columns die with it (a
            // regrow gets fresh parity channels starting at 0).
            for b in target..target + m {
                self.col_floors.remove(&b);
            }
        }
        drop(reg);
        self.events.push((
            env.now(),
            CoordEvent::Merged {
                source,
                target,
                buckets: self.state.bucket_count(),
            },
        ));
        self.drain_queues(env);
    }

    /// Run queued structural work when the coordinator goes idle.
    fn drain_queues(&mut self, env: &mut Env<'_, Msg>) {
        if self.outstanding_splits > 0
            || !self.checks.is_empty()
            || !self.recoveries.is_empty()
            || !self.degraded.is_empty()
        {
            return;
        }
        if let Some(group) = self.upgrade_queue.pop_front() {
            self.start_upgrade(env, group);
            return;
        }
        if self.deferred_splits > 0 {
            self.deferred_splits -= 1;
            self.do_split(env);
        }
    }

    fn start_upgrade(&mut self, env: &mut Env<'_, Msg>, group: u64) {
        let Some(&k_old) = self.group_k.get(crate::convert::to_index(group)) else {
            // A queued upgrade can outlive its group (merged away).
            self.drain_queues(env);
            return;
        };
        let k_new = self.k_file;
        if k_old >= k_new {
            self.drain_queues(env);
            return;
        }
        let token = self.token();
        let existing = self.existing_cols(group);
        let mut awaiting = HashSet::new();
        let reg = self.shared.registry.borrow();
        let m = self.m() as u64;
        for c in 0..existing {
            awaiting.insert(c);
            env.send(
                reg.data_node(group * m + c as u64),
                Msg::TransferShard { token },
            );
        }
        drop(reg);
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        self.recoveries.insert(
            token,
            RecoveryCtx {
                group,
                purpose: Purpose::Upgrade,
                k: k_new,
                rebuild: (self.m() + k_old..self.m() + k_new).collect(),
                awaiting,
                collected: HashMap::new(),
                installs: HashMap::new(),
                install_msgs: HashMap::new(),
                spares: HashMap::new(),
                timer,
                attempts: 0,
            },
        );
        // A group with no existing columns (cannot happen: groups are
        // created by splits into them) would stall; guard anyway.
        if existing == 0 {
            if let Some(ctx) = self.recoveries.remove(&token) {
                self.finish_collection(env, token, ctx);
            }
        }
    }

    // ----- failure detection -----

    fn handle_suspect(
        &mut self,
        env: &mut Env<'_, Msg>,
        op_id: OpId,
        client: NodeId,
        kind: ReqKind,
    ) {
        let bucket = self.state.address(kind.key());
        let group = bucket / self.m() as u64;
        if self.dead_groups.contains(&group) {
            env.send(
                client,
                Msg::Reply {
                    op_id,
                    result: OpResult::Failed("group unrecoverable".into()),
                    iam: None,
                },
            );
            return;
        }
        // Already working on this group: park the op.
        if self.checking_groups.contains(&group)
            || self.recoveries.values().any(|r| r.group == group)
        {
            self.queue_ops(group, vec![(op_id, client, kind)]);
            return;
        }
        let col = crate::convert::to_index(bucket % self.m() as u64);
        if self.failed.contains(&(group, col)) {
            // Known failure, recovery apparently finished (or pending
            // elsewhere); queue and audit again.
            self.queue_ops(group, vec![(op_id, client, kind)]);
            self.start_group_check(env, group);
            return;
        }
        // A probe for this bucket is already in flight (e.g. a duplicated
        // Suspect): ride along instead of double-probing.
        if let Some(probe) = self.probes.values_mut().find(|p| p.bucket == bucket) {
            if !probe
                .pending
                .iter()
                .any(|(o, c, _)| *o == op_id && *c == client)
            {
                probe.pending.push((op_id, client, kind));
            }
            return;
        }
        // Probe the bucket's node.
        let token = self.token();
        let node = self.shared.registry.borrow().data_node(bucket);
        env.send(node, Msg::Probe { token });
        let timer = env.set_timer(self.shared.cfg.probe_timeout_us);
        self.timer_tokens.insert(timer, token);
        self.probes.insert(
            token,
            ProbeCtx {
                bucket,
                pending: vec![(op_id, client, kind)],
                timer,
                attempts: 0,
            },
        );
    }

    fn handle_probe_ack(&mut self, env: &mut Env<'_, Msg>, token: u64, from: NodeId) {
        // A plain probe: the node is alive, deliver the parked ops
        // directly (the client image or a forwarding hop was at fault).
        if let Some(probe) = self.probes.remove(&token) {
            env.cancel_timer(probe.timer);
            self.timer_tokens.remove(&probe.timer);
            let node = self.shared.registry.borrow().data_node(probe.bucket);
            for (op_id, client, kind) in probe.pending {
                env.send(
                    node,
                    Msg::Req {
                        op_id,
                        client,
                        intended: probe.bucket,
                        hops: 1,
                        kind,
                    },
                );
            }
            return;
        }
        // Otherwise it belongs to a group check; the responding shard is
        // identified by its node id.
        self.note_check_ack(env, token, from);
    }

    fn start_group_check(&mut self, env: &mut Env<'_, Msg>, group: u64) {
        self.checking_groups.insert(group);
        let token = self.token();
        let m = self.m() as u64;
        let existing = self.existing_cols(group);
        let reg = self.shared.registry.borrow();
        let mut probed = Vec::new();
        for c in 0..existing {
            probed.push((c, reg.data_node(group * m + c as u64)));
        }
        for (q, n) in reg.parity_nodes(group).iter().enumerate() {
            probed.push((self.m() + q, *n));
        }
        drop(reg);
        for (_, node) in &probed {
            env.send(*node, Msg::Probe { token });
        }
        let timer = env.set_timer(self.shared.cfg.probe_timeout_us);
        self.timer_tokens.insert(timer, token);
        self.checks.insert(
            token,
            GroupCheckCtx {
                group,
                probed,
                responded: HashSet::new(),
                timer,
                attempts: 0,
            },
        );
    }

    /// Group-check probe acks arrive as ProbeAck with the check's token;
    /// routed here from the dispatcher. A check whose every probed shard
    /// responded finishes early (healthy groups pay no timeout).
    fn note_check_ack(&mut self, env: &mut Env<'_, Msg>, token: u64, node: NodeId) {
        let all_in = if let Some(ctx) = self.checks.get_mut(&token) {
            if let Some((shard, _)) = ctx.probed.iter().find(|(_, n)| *n == node) {
                ctx.responded.insert(*shard);
            }
            ctx.responded.len() == ctx.probed.len()
        } else {
            false
        };
        if let Some(check) = if all_in {
            self.checks.remove(&token)
        } else {
            None
        } {
            env.cancel_timer(check.timer);
            self.timer_tokens.remove(&check.timer);
            self.finish_group_check(env, check);
        }
    }

    fn finish_group_check(&mut self, env: &mut Env<'_, Msg>, check: GroupCheckCtx) {
        let group = check.group;
        let failed: Vec<usize> = check
            .probed
            .iter()
            .map(|(s, _)| *s)
            .filter(|s| !check.responded.contains(s))
            .collect();
        self.checking_groups.remove(&group);
        if failed.is_empty() {
            // False alarm: replay queued ops to their (live) buckets.
            self.replay_queued(env, group);
            self.drain_queues(env);
            return;
        }
        let Some(&k_g) = self.group_k.get(crate::convert::to_index(group)) else {
            // The group vanished (merged away) between probe and reply.
            self.invariant_violated(
                env,
                "group check finished for a group with no parity record",
            );
            self.drain_queues(env);
            return;
        };
        self.events.push((
            env.now(),
            CoordEvent::FailureDetected {
                group,
                shards: failed.clone(),
            },
        ));
        if failed.len() > k_g {
            self.dead_groups.insert(group);
            env.obs().incr("recoveries_failed");
            env.trace(ObsEvent::RecoveryEnd {
                group,
                rebuilt: 0,
                ok: false,
            });
            self.events.push((
                env.now(),
                CoordEvent::GroupUnrecoverable {
                    group,
                    failed: failed.len(),
                },
            ));
            for (op_id, client, _) in self.queued_ops.remove(&group).unwrap_or_default() {
                env.send(
                    client,
                    Msg::Reply {
                        op_id,
                        result: OpResult::Failed("group unrecoverable".into()),
                        iam: None,
                    },
                );
            }
            self.drain_queues(env);
            return;
        }
        for &s in &failed {
            self.failed.insert((group, s));
        }

        // Serve queued *lookups* right now in degraded mode; writes wait
        // for the rebuilt bucket.
        let queued = self.queued_ops.entry(group).or_default();
        let mut keep = Vec::new();
        let mut degraded_lookups = Vec::new();
        for (op_id, client, kind) in queued.drain(..) {
            match kind {
                ReqKind::Lookup(key) => degraded_lookups.push((op_id, client, key)),
                other => keep.push((op_id, client, other)),
            }
        }
        *queued = keep;
        for (op_id, client, key) in degraded_lookups {
            self.start_degraded_read(env, group, op_id, client, key);
        }

        // Kick off the rebuild: collect all surviving data columns plus as
        // many parity shards as there are failed data columns.
        env.obs().incr("recoveries_started");
        env.trace(ObsEvent::RecoveryStart {
            group,
            failed: failed.len() as u64,
        });
        let token = self.token();
        let m = self.m();
        let existing = self.existing_cols(group);
        let failed_data: Vec<usize> = failed.iter().copied().filter(|&s| s < m).collect();
        let reg = self.shared.registry.borrow();
        let mut awaiting = HashSet::new();
        for c in 0..existing {
            if !failed.contains(&c) {
                awaiting.insert(c);
                env.send(
                    reg.data_node(group * m as u64 + c as u64),
                    Msg::TransferShard { token },
                );
            }
        }
        let mut parity_needed = failed_data.len();
        for (q, node) in reg.parity_nodes(group).iter().enumerate() {
            if parity_needed == 0 {
                break;
            }
            if !failed.contains(&(m + q)) {
                awaiting.insert(m + q);
                env.send(*node, Msg::TransferShard { token });
                parity_needed -= 1;
            }
        }
        drop(reg);
        debug_assert_eq!(parity_needed, 0, "tolerance check guarantees survivors");
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        self.recoveries.insert(
            token,
            RecoveryCtx {
                group,
                purpose: Purpose::Repair,
                k: k_g,
                rebuild: failed,
                awaiting,
                collected: HashMap::new(),
                installs: HashMap::new(),
                install_msgs: HashMap::new(),
                spares: HashMap::new(),
                timer,
                attempts: 0,
            },
        );
        // Degenerate case: nothing to await (e.g. group of one existing
        // failed column rebuilt purely from parity... then parity was
        // awaited; truly empty only if no survivors needed).
        if self
            .recoveries
            .get(&token)
            .is_some_and(|c| c.awaiting.is_empty())
        {
            if let Some(ctx) = self.recoveries.remove(&token) {
                self.finish_collection(env, token, ctx);
            }
        }
    }

    fn replay_queued(&mut self, env: &mut Env<'_, Msg>, group: u64) {
        let reg = self.shared.registry.borrow();
        for (op_id, client, kind) in self.queued_ops.remove(&group).unwrap_or_default() {
            let bucket = self.state.address(kind.key());
            env.send(
                reg.data_node(bucket),
                Msg::Req {
                    op_id,
                    client,
                    intended: bucket,
                    hops: 1,
                    kind,
                },
            );
        }
    }

    // ----- restart (Δ-suffix) recovery -----

    /// A data bucket replayed its local store and asks to resume its column
    /// at `delta_seq`. Cheap path: confirm every parity channel for that
    /// column stands at one common watermark `R ≥ delta_seq` and have the
    /// parity buckets ship the missed Δ-suffix `[delta_seq, R)`. Anything
    /// murkier — displaced bucket, busy or dead group, divergent parity
    /// watermarks, truncated history — falls back to the full RS rebuild;
    /// correctness never depends on the suffix path.
    fn handle_restart_report(
        &mut self,
        env: &mut Env<'_, Msg>,
        from: NodeId,
        bucket: u64,
        delta_seq: u64,
    ) {
        let m = self.m() as u64;
        let group = bucket / m;
        let col = crate::convert::to_index(bucket % m);
        let reg = self.shared.registry.borrow();
        let still_owner =
            crate::convert::to_index(bucket) < reg.data_count() && reg.data_node(bucket) == from;
        let parity: Vec<NodeId> = reg.parity_nodes(group).to_vec();
        drop(reg);
        if !still_owner {
            // Recreated elsewhere meanwhile: demote to a hot spare — the
            // same path as a plain CheckOwnership miss, including the
            // double-pooling guard.
            env.send(from, Msg::Retire);
            if !self.pool.contains(&from) {
                self.pool.push(from);
            }
            return;
        }
        if self.suffixes.values().any(|c| c.bucket == bucket) {
            return; // duplicated report: handshake already running
        }
        let group_busy = self.dead_groups.contains(&group)
            || self.checking_groups.contains(&group)
            || self.recoveries.values().any(|r| r.group == group)
            || self.degraded.values().any(|d| d.group == group);
        if group_busy {
            // Racing the failure machinery would certify a resume point the
            // rebuild is about to invalidate.
            self.restart_fallback(env, bucket, group, col, from);
            return;
        }
        if parity.is_empty() {
            // k = 0: no parity stream to reconcile with — the local log is
            // the only copy and it is authoritative.
            self.failed.remove(&(group, col));
            env.send(from, Msg::OwnershipAck);
            env.obs().incr("restart_recoveries");
            self.events.push((
                env.now(),
                CoordEvent::BucketRestarted {
                    bucket,
                    suffix_len: 0,
                },
            ));
            return;
        }
        let token = self.token();
        for pn in &parity {
            env.send(
                *pn,
                Msg::SuffixPull {
                    group,
                    col,
                    from_seq: delta_seq,
                    target: from,
                },
            );
        }
        let timer = env.set_timer(self.shared.cfg.probe_timeout_us);
        self.timer_tokens.insert(timer, token);
        self.suffixes.insert(
            token,
            SuffixCtx {
                group,
                col,
                bucket,
                node: from,
                from_seq: delta_seq,
                infos: HashMap::new(),
                expected: parity.len(),
                timer,
                attempts: 0,
            },
        );
    }

    /// One parity bucket answered a `SuffixPull`. Once all `k` are in, the
    /// resume point is certified iff every parity channel reports the same
    /// watermark `R`, the bucket is at or behind it, and (when behind) at
    /// least one parity bucket's history covered the gap.
    fn handle_suffix_info(
        &mut self,
        env: &mut Env<'_, Msg>,
        from: NodeId,
        bucket: u64,
        next_seq: u64,
        covered: bool,
        bytes: u64,
    ) {
        let Some(token) = self
            .suffixes
            .iter()
            .find(|(_, c)| c.bucket == bucket)
            .map(|(t, _)| *t)
        else {
            return; // stale answer for a settled handshake
        };
        let done = {
            let Some(ctx) = self.suffixes.get_mut(&token) else {
                return;
            };
            ctx.infos.insert(
                from,
                SuffixReply {
                    next_seq,
                    covered,
                    bytes,
                },
            );
            ctx.infos.len() >= ctx.expected
        };
        if !done {
            return;
        }
        let Some(ctx) = self.suffixes.remove(&token) else {
            return;
        };
        env.cancel_timer(ctx.timer);
        self.timer_tokens.remove(&ctx.timer);
        let mut seqs = ctx.infos.values().map(|r| r.next_seq);
        let r0 = seqs.next().unwrap_or(ctx.from_seq);
        let all_equal = seqs.all(|s| s == r0);
        let any_covered = ctx.infos.values().any(|r| r.covered);
        let ok = all_equal && ctx.from_seq <= r0 && (ctx.from_seq == r0 || any_covered);
        if !ok {
            self.restart_fallback(env, ctx.bucket, ctx.group, ctx.col, ctx.node);
            return;
        }
        self.failed.remove(&(ctx.group, ctx.col));
        env.send(ctx.node, Msg::OwnershipAck);
        let moved: u64 = ctx.infos.values().map(|r| r.bytes).sum();
        env.obs().incr("restart_recoveries");
        env.obs().add("recovery_bytes_moved", moved);
        self.events.push((
            env.now(),
            CoordEvent::BucketRestarted {
                bucket: ctx.bucket,
                suffix_len: r0 - ctx.from_seq,
            },
        ));
        self.drain_queues(env);
    }

    /// Re-pull the parity answers still missing; after `coord_retries`
    /// silent rounds the handshake gives up and falls back.
    fn retry_suffix(&mut self, env: &mut Env<'_, Msg>, token: u64) {
        let retries = self.shared.cfg.coord_retries;
        let give_up = match self.suffixes.get_mut(&token) {
            Some(ctx) => {
                ctx.attempts += 1;
                ctx.attempts > retries
            }
            None => return,
        };
        if give_up {
            let Some(ctx) = self.suffixes.remove(&token) else {
                return;
            };
            self.restart_fallback(env, ctx.bucket, ctx.group, ctx.col, ctx.node);
            return;
        }
        let Some(ctx) = self.suffixes.get(&token) else {
            return;
        };
        let reg = self.shared.registry.borrow();
        let sends: Vec<(NodeId, Msg)> = reg
            .parity_nodes(ctx.group)
            .iter()
            .filter(|pn| !ctx.infos.contains_key(pn))
            .map(|pn| {
                (
                    *pn,
                    Msg::SuffixPull {
                        group: ctx.group,
                        col: ctx.col,
                        from_seq: ctx.from_seq,
                        target: ctx.node,
                    },
                )
            })
            .collect();
        drop(reg);
        for (node, msg) in sends {
            env.send(node, msg);
        }
        let timer = env.set_timer(self.shared.cfg.probe_timeout_us);
        self.timer_tokens.insert(timer, token);
        if let Some(ctx) = self.suffixes.get_mut(&token) {
            ctx.timer = timer;
        }
    }

    /// The restarted bucket itself gave up on the Δ-suffix catch-up: it
    /// could not apply a shipped suffix entry, or its watchdog expired with
    /// the handshake wedged. Same outcome as a coordinator-side give-up —
    /// cancel any handshake still in flight and demote the node into the
    /// full RS rebuild. An abort can also arrive *after* certification
    /// (the undecodable suffix raced the `OwnershipAck`); the bucket
    /// ignores that ack, so the fallback here is still the only path back
    /// to a serving replica.
    fn handle_restart_abort(&mut self, env: &mut Env<'_, Msg>, from: NodeId, bucket: u64) {
        let token = self
            .suffixes
            .iter()
            .find(|(_, c)| c.bucket == bucket && c.node == from)
            .map(|(t, _)| *t);
        if let Some(token) = token {
            if let Some(ctx) = self.suffixes.remove(&token) {
                env.cancel_timer(ctx.timer);
                self.timer_tokens.remove(&ctx.timer);
            }
        }
        let m = self.m() as u64;
        let group = bucket / m;
        let col = crate::convert::to_index(bucket % m);
        let reg = self.shared.registry.borrow();
        let still_owner =
            crate::convert::to_index(bucket) < reg.data_count() && reg.data_node(bucket) == from;
        drop(reg);
        if still_owner {
            self.restart_fallback(env, bucket, group, col, from);
        } else {
            // Displaced meanwhile: the bucket already lives elsewhere; just
            // demote the reporter (with the double-pooling guard).
            env.send(from, Msg::Retire);
            if !self.pool.contains(&from) {
                self.pool.push(from);
            }
        }
    }

    /// Give up on the Δ-suffix path for `bucket`: demote the restarted node
    /// to a hot spare and let the standard audit → RS-rebuild machinery
    /// recreate the bucket from the group's survivors.
    fn restart_fallback(
        &mut self,
        env: &mut Env<'_, Msg>,
        bucket: u64,
        group: u64,
        col: usize,
        node: NodeId,
    ) {
        env.obs().incr("restart_fallbacks");
        env.trace(ObsEvent::RestartFallback { bucket });
        env.send(node, Msg::Retire);
        if !self.pool.contains(&node) {
            self.pool.push(node);
        }
        self.failed.insert((group, col));
        let audit_clear = !self.checking_groups.contains(&group)
            && !self.dead_groups.contains(&group)
            && !self.recoveries.values().any(|r| r.group == group);
        if audit_clear {
            self.start_group_check(env, group);
        }
    }

    // ----- degraded-mode record recovery -----

    fn start_degraded_read(
        &mut self,
        env: &mut Env<'_, Msg>,
        group: u64,
        op_id: OpId,
        client: NodeId,
        key: Key,
    ) {
        // Ask a surviving parity bucket which rank holds the key.
        let m = self.m();
        let reg = self.shared.registry.borrow();
        let alive_parity = reg
            .parity_nodes(group)
            .iter()
            .enumerate()
            .find(|(q, _)| !self.failed.contains(&(group, m + q)));
        let Some((_, &pnode)) = alive_parity else {
            drop(reg);
            env.send(
                client,
                Msg::Reply {
                    op_id,
                    result: OpResult::Failed("no surviving parity bucket".into()),
                    iam: None,
                },
            );
            return;
        };
        drop(reg);
        env.obs().incr("degraded_reads");
        env.trace(ObsEvent::DegradedRead { group });
        let token = self.token();
        env.send(pnode, Msg::FindRecord { key, token });
        let timer = env.set_timer(self.shared.cfg.coord_retransmit_us);
        self.timer_tokens.insert(timer, token);
        self.degraded.insert(
            token,
            DegradedCtx {
                group,
                op_id,
                client,
                key,
                stage: DegradedStage::AwaitFind { pnode },
                timer,
                attempts: 0,
            },
        );
    }

    fn handle_find_reply(
        &mut self,
        env: &mut Env<'_, Msg>,
        token: u64,
        found: Option<(Rank, Vec<Option<Key>>)>,
    ) {
        // A duplicated reply for a read already in the cell stage must not
        // restart it.
        if !matches!(
            self.degraded.get(&token).map(|c| &c.stage),
            Some(DegradedStage::AwaitFind { .. })
        ) {
            return;
        }
        let Some(mut ctx) = self.degraded.remove(&token) else {
            return;
        };
        let Some((rank, keys)) = found else {
            // The key never existed: unsuccessful-search semantics.
            env.cancel_timer(ctx.timer);
            self.timer_tokens.remove(&ctx.timer);
            env.send(
                ctx.client,
                Msg::Reply {
                    op_id: ctx.op_id,
                    result: OpResult::Value(None),
                    iam: None,
                },
            );
            self.drain_queues(env);
            return;
        };
        let m = self.m();
        // The parity bucket claimed it found the key, so the key list it
        // returned must contain it. A reply that violates that (a buggy or
        // byzantine parity node — this arrives off the wire) fails the one
        // lookup instead of aborting the coordinator.
        let Some(target_col) = keys.iter().position(|k| *k == Some(ctx.key)) else {
            env.cancel_timer(ctx.timer);
            self.timer_tokens.remove(&ctx.timer);
            self.invariant_violated(
                env,
                "FindRecordReply's key list does not contain the key it claims to have found",
            );
            env.send(
                ctx.client,
                Msg::Reply {
                    op_id: ctx.op_id,
                    result: OpResult::Failed("inconsistent parity reply".into()),
                    iam: None,
                },
            );
            self.drain_queues(env);
            return;
        };
        // Gather m shards: existing live data columns first, then parity.
        let group = ctx.group;
        let existing = self.existing_cols(group);
        let mut cells: HashMap<usize, Vec<u8>> = HashMap::new();
        // Non-existing columns are known-zero locally.
        for c in existing..m {
            cells.insert(c, vec![0u8; self.shared.cfg.cell_len()]);
        }
        let mut requested: Vec<(usize, NodeId)> = Vec::new();
        let reg = self.shared.registry.borrow();
        let mut remaining = m.saturating_sub(cells.len());
        for c in 0..existing {
            if remaining == 0 {
                break;
            }
            if !self.failed.contains(&(group, c)) {
                let node = reg.data_node(group * m as u64 + c as u64);
                env.send(node, Msg::ReadCell { rank, token });
                requested.push((c, node));
                remaining -= 1;
            }
        }
        for (q, node) in reg.parity_nodes(group).iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if !self.failed.contains(&(group, m + q)) {
                env.send(*node, Msg::ReadCell { rank, token });
                requested.push((m + q, *node));
                remaining -= 1;
            }
        }
        drop(reg);
        debug_assert_eq!(remaining, 0, "tolerance guarantees m live shards");
        let need = cells.len() + requested.len();
        debug_assert_eq!(need, m);
        ctx.stage = DegradedStage::AwaitCells {
            target_col,
            rank,
            requested,
            cells,
            need,
        };
        self.degraded.insert(token, ctx);
    }

    fn handle_cell_data(
        &mut self,
        env: &mut Env<'_, Msg>,
        token: u64,
        shard: usize,
        cell: Vec<u8>,
    ) {
        let done = {
            let Some(ctx) = self.degraded.get_mut(&token) else {
                return;
            };
            let DegradedStage::AwaitCells { cells, need, .. } = &mut ctx.stage else {
                return;
            };
            cells.insert(shard, cell);
            cells.len() >= *need
        };
        if !done {
            return;
        }
        let Some(ctx) = self.degraded.remove(&token) else {
            return;
        };
        env.cancel_timer(ctx.timer);
        self.timer_tokens.remove(&ctx.timer);
        let group = ctx.group;
        let DegradedStage::AwaitCells {
            target_col, cells, ..
        } = ctx.stage
        else {
            // The stage was AwaitCells when `done` was computed above.
            self.invariant_violated(env, "degraded read left the cell stage mid-collection");
            return;
        };
        // group_k and the field/m pair were validated when the group was
        // created; a mismatch here degrades the one lookup, not the actor.
        let k_g = self
            .group_k
            .get(crate::convert::to_index(group))
            .copied()
            .unwrap_or(0);
        let result = match AnyCode::new(self.shared.cfg.field, self.m(), k_g) {
            Ok(code) => {
                let avail: Vec<(usize, &[u8])> =
                    cells.iter().map(|(s, c)| (*s, c.as_slice())).collect();
                match code.reconstruct_one(target_col, &avail) {
                    Ok(cell) => match decode_cell(&cell) {
                        Some(payload) => OpResult::Value(Some(payload)),
                        None => OpResult::Failed("corrupt cell after decode".into()),
                    },
                    Err(e) => OpResult::Failed(format!("decode failed: {e}")),
                }
            }
            Err(e) => OpResult::Failed(format!("code construction failed: {e}")),
        };
        env.send(
            ctx.client,
            Msg::Reply {
                op_id: ctx.op_id,
                result,
                iam: None,
            },
        );
        self.drain_queues(env);
    }

    // ----- shard collection, decode, install -----

    fn handle_shard_data(
        &mut self,
        env: &mut Env<'_, Msg>,
        token: u64,
        shard: usize,
        content: ShardContent,
    ) {
        let Some(ctx) = self.recoveries.get_mut(&token) else {
            return;
        };
        if ctx.awaiting.remove(&shard) {
            ctx.collected.insert(shard, content);
        }
        if ctx.awaiting.is_empty() {
            if let Some(mut ctx) = self.recoveries.remove(&token) {
                // The rebuild XORs shards cell-by-cell, so every collected
                // shard must sit on the same Δ-prefix. Survivors freeze on
                // `TransferShard`, but a write racing the first round (or a
                // Δ still in flight to a parity bucket) can tear the cut —
                // detect it and re-collect rather than rebuild garbage.
                if torn_cut(self.m(), &ctx.collected).is_some() {
                    env.obs().incr("recovery_torn_cuts");
                    ctx.awaiting = ctx.collected.keys().copied().collect();
                    ctx.collected.clear();
                    self.resend_collection(env, token, &ctx);
                    self.recoveries.insert(token, ctx);
                    return;
                }
                self.finish_collection(env, token, ctx);
            }
        }
    }

    /// Re-send `TransferShard` to every shard a collection still awaits
    /// (the torn-cut retry path; the periodic retransmit timer keeps its
    /// own schedule and give-up budget).
    fn resend_collection(&self, env: &mut Env<'_, Msg>, token: u64, ctx: &RecoveryCtx) {
        let m = self.m();
        let reg = self.shared.registry.borrow();
        let mut targets = Vec::new();
        for &shard in &ctx.awaiting {
            let node = if shard < m {
                reg.data_node(ctx.group * m as u64 + shard as u64)
            } else {
                match reg.parity_nodes(ctx.group).get(shard - m) {
                    Some(n) => *n,
                    None => continue,
                }
            };
            targets.push(node);
        }
        drop(reg);
        for node in targets {
            env.send(node, Msg::TransferShard { token });
        }
    }

    /// The shard collection for `group` is over, however it ended: tell
    /// the surviving data columns to serve writes again. Columns being
    /// rebuilt are skipped (their nodes are gone); a bucket that never
    /// froze treats the message as a no-op, and a lost message is covered
    /// by the bucket's own freeze safety timer.
    fn resume_group_writes(&self, env: &mut Env<'_, Msg>, group: u64, rebuild: &[usize]) {
        let m = self.m();
        let reg = self.shared.registry.borrow();
        let mut targets = Vec::new();
        for col in 0..m {
            if rebuild.contains(&col) {
                continue;
            }
            if let Some(node) = reg.try_data_node(group * m as u64 + col as u64) {
                targets.push(node);
            }
        }
        drop(reg);
        for node in targets {
            env.send(node, Msg::ResumeWrites { group });
        }
    }

    fn finish_collection(&mut self, env: &mut Env<'_, Msg>, token: u64, mut ctx: RecoveryCtx) {
        // A consistent cut is in hand: the survivors may serve writes again
        // whatever happens below (the rebuild works on the snapshot, and
        // the dead bucket's ops stay parked here until the install).
        self.resume_group_writes(env, ctx.group, &ctx.rebuild);
        let m = self.m();
        let cell_len = self.shared.cfg.cell_len();
        let existing = self.existing_cols(ctx.group);
        // The (field, m, k) triple was validated at file creation and every
        // upgrade; if decode still fails the collected shards are
        // inconsistent. Either way: record it, abandon the rebuild (the
        // shards stay marked failed, so the next suspect re-audits), and
        // fail the parked writes back to their clients.
        let rebuilt = AnyCode::new(self.shared.cfg.field, m, ctx.k)
            .map_err(|e| e.to_string())
            .and_then(|code| {
                rebuild_shards(
                    m,
                    ctx.k,
                    cell_len,
                    existing,
                    &ctx.collected,
                    &ctx.rebuild,
                    &code,
                )
            });
        let rebuilt = match rebuilt {
            Ok(r) => r,
            Err(why) => {
                env.cancel_timer(ctx.timer);
                self.timer_tokens.remove(&ctx.timer);
                self.invariant_violated(env, &format!("group rebuild failed: {why}"));
                for (op_id, client, _) in self.queued_ops.remove(&ctx.group).unwrap_or_default() {
                    env.send(
                        client,
                        Msg::Reply {
                            op_id,
                            result: OpResult::Failed("group rebuild failed".into()),
                            iam: None,
                        },
                    );
                }
                self.drain_queues(env);
                return;
            }
        };

        // Out of spare nodes: abandon this rebuild instead of panicking
        // the coordinator. The shards stay marked failed, so the next
        // suspect re-audits the group and retries once nodes free up (a
        // merge, say); queued lookups were already served degraded, and
        // parked writes fail back to their clients.
        if self.pool.len() < rebuilt.len() {
            env.cancel_timer(ctx.timer);
            self.timer_tokens.remove(&ctx.timer);
            env.obs().incr("recoveries_stalled");
            self.events.push((
                env.now(),
                CoordEvent::RecoveryStalled {
                    group: ctx.group,
                    needed: rebuilt.len(),
                },
            ));
            for (op_id, client, _) in self.queued_ops.remove(&ctx.group).unwrap_or_default() {
                env.send(
                    client,
                    Msg::Reply {
                        op_id,
                        result: OpResult::Failed("no spare nodes to rebuild onto".into()),
                        iam: None,
                    },
                );
            }
            return;
        }

        // Install each rebuilt shard on a spare node.
        for (shard, content) in rebuilt {
            let Some(spare) = self.alloc_node() else {
                // Reserved above (`pool.len() >= rebuilt.len()`); the
                // retransmit timer retries whatever this round missed.
                self.invariant_violated(env, "node pool ran dry mid-install despite reservation");
                break;
            };
            let install_token = self.token();
            let (bucket, index) = if shard < m {
                (Some(ctx.group * m as u64 + shard as u64), None)
            } else {
                (None, Some(shard - m))
            };
            // Data buckets need their level restored; the coordinator
            // computes it from the file state. Only a data shard (shard < m,
            // i.e. `bucket` is Some) carries a level to restore.
            let content = match (content, bucket) {
                (
                    ShardContent::Data {
                        next_rank,
                        delta_seq,
                        records,
                        ..
                    },
                    Some(b),
                ) => ShardContent::Data {
                    level: self.state.level_of(b),
                    next_rank,
                    delta_seq,
                    records,
                },
                (p, _) => p,
            };
            let msg = Msg::Install {
                group: ctx.group,
                bucket,
                index,
                k: ctx.k,
                content,
                token: install_token,
            };
            env.send(spare, msg.clone());
            ctx.installs.insert(install_token, shard);
            ctx.install_msgs.insert(install_token, (spare, msg));
            ctx.spares.insert(shard, spare);
        }
        self.recoveries.insert(token, ctx);
    }

    fn handle_install_ack(&mut self, env: &mut Env<'_, Msg>, install_token: u64) {
        let Some(recovery_token) = self
            .recoveries
            .iter()
            .find(|(_, c)| c.installs.contains_key(&install_token))
            .map(|(t, _)| *t)
        else {
            return;
        };
        let (done, displaced) = {
            let Some(ctx) = self.recoveries.get_mut(&recovery_token) else {
                return;
            };
            let Some(shard) = ctx.installs.remove(&install_token) else {
                return;
            };
            let bytes = ctx
                .install_msgs
                .get(&install_token)
                .map_or(0, |(_, m)| m.size_bytes() as u64);
            ctx.install_msgs.remove(&install_token);
            let Some(&spare) = ctx.spares.get(&shard) else {
                return;
            };
            if matches!(ctx.purpose, Purpose::Repair) {
                env.obs().incr("recovery_shards_rebuilt");
                env.obs().add("recovery_bytes_moved", bytes);
                env.trace(ObsEvent::RecoveryShard {
                    group: ctx.group,
                    shard: shard as u64,
                    bytes,
                });
            }
            let m = self.shared.cfg.group_size;
            let mut reg = self.shared.registry.borrow_mut();
            let mut displaced = None;
            if shard < m {
                let bucket = ctx.group * m as u64 + shard as u64;
                displaced = Some(reg.data_node(bucket));
                reg.move_data(bucket, spare);
            } else if shard - m < reg.group_k(ctx.group) {
                displaced = reg.parity_nodes(ctx.group).get(shard - m).copied();
                reg.move_parity(ctx.group, shard - m, spare);
            } else {
                // Upgrade: append the new parity column.
                let mut nodes = reg.parity_nodes(ctx.group).to_vec();
                debug_assert_eq!(nodes.len(), shard - m);
                nodes.push(spare);
                reg.set_parity(ctx.group, nodes);
            }
            (ctx.installs.is_empty(), displaced)
        };
        // Fence the replaced node: if it was only partitioned (not dead) it
        // must not keep serving the shard. The Retire is best-effort — the
        // parity sender check (deltas accepted only from the registered
        // bucket node) backs it up while the Retire is in flight.
        if let Some(old) = displaced {
            env.send(old, Msg::Retire);
        }
        if done {
            let Some(ctx) = self.recoveries.remove(&recovery_token) else {
                return;
            };
            env.cancel_timer(ctx.timer);
            self.timer_tokens.remove(&ctx.timer);
            match ctx.purpose {
                Purpose::Repair => {
                    for &s in &ctx.rebuild {
                        self.failed.remove(&(ctx.group, s));
                    }
                    env.obs().incr("recoveries_completed");
                    env.trace(ObsEvent::RecoveryEnd {
                        group: ctx.group,
                        rebuilt: ctx.rebuild.len() as u64,
                        ok: true,
                    });
                    self.events.push((
                        env.now(),
                        CoordEvent::GroupRecovered {
                            group: ctx.group,
                            shards: ctx.rebuild.clone(),
                        },
                    ));
                    self.replay_queued(env, ctx.group);
                }
                Purpose::Upgrade => {
                    env.obs().incr("group_upgrades");
                    if let Some(slot) = self.group_k.get_mut(crate::convert::to_index(ctx.group)) {
                        *slot = ctx.k;
                    }
                    self.events.push((
                        env.now(),
                        CoordEvent::GroupUpgraded {
                            group: ctx.group,
                            k: ctx.k,
                        },
                    ));
                }
            }
            self.drain_queues(env);
        }
    }
}

/// Copy `cell` into the `pos`-th `cell_len` slot of `buf`, clamping to the
/// shorter of the two. A wrong-length cell (the content arrives off the
/// wire) corrupts at most its own record instead of panicking the decode.
fn copy_cell(buf: &mut [u8], pos: usize, cell_len: usize, cell: &[u8]) {
    if let Some(dst) = buf.get_mut(pos * cell_len..(pos + 1) * cell_len) {
        let n = dst.len().min(cell.len());
        if let (Some(d), Some(s)) = (dst.get_mut(..n), cell.get(..n)) {
            d.copy_from_slice(s);
        }
    }
}

/// Rebuild the listed shards of one group from the collected survivors.
///
/// Pure function (no messaging) so the decode logic is unit-testable. Uses
/// the concatenated-buffer trick: all ranks of a shard are laid out
/// rank-major in one buffer, so one `reconstruct` call decodes every record
/// group at once.
///
/// # Errors
/// Check a completed shard collection for a torn cut. The rebuild treats
/// the collected shards as one code word per rank, which is only sound if
/// every parity shard has applied exactly the Δ-prefix each collected data
/// shard had emitted when it was snapshotted (`col_seqs[c] == delta_seq`),
/// and all parity shards agree with each other on every column (the only
/// cross-check available for columns whose data shard is being rebuilt).
/// Returns a description of the first mismatch, `None` when consistent.
fn torn_cut(m: usize, collected: &HashMap<usize, ShardContent>) -> Option<String> {
    let parities: Vec<(usize, &Vec<u64>)> = collected
        .iter()
        .filter_map(|(&s, c)| match c {
            ShardContent::Parity { col_seqs, .. } if s >= m => Some((s, col_seqs)),
            _ => None,
        })
        .collect();
    for (&shard, content) in collected {
        let ShardContent::Data { delta_seq, .. } = content else {
            continue;
        };
        for &(pshard, col_seqs) in &parities {
            let applied = col_seqs.get(shard).copied().unwrap_or(0);
            if applied != *delta_seq {
                return Some(format!(
                    "column {shard} emitted Δ-seq {delta_seq} but parity shard {pshard} applied {applied}"
                ));
            }
        }
    }
    if let Some((&(first_shard, first), rest)) = parities.split_first() {
        for &(pshard, col_seqs) in rest {
            if col_seqs != first {
                return Some(format!(
                    "parity shards {first_shard} and {pshard} disagree on applied Δ-seqs: {first:?} vs {col_seqs:?}"
                ));
            }
        }
    }
    None
}

/// A human-readable description when the survivors cannot produce the
/// requested shards (too many erasures, inconsistent content). The caller
/// surfaces it as a degraded-mode event and abandons the rebuild.
fn rebuild_shards(
    m: usize,
    k: usize,
    cell_len: usize,
    existing_cols: usize,
    collected: &HashMap<usize, ShardContent>,
    rebuild: &[usize],
    code: &AnyCode,
) -> Result<Vec<(usize, ShardContent)>, String> {
    // Universe of ranks, plus the per-column delta-sequence watermarks.
    // Collection happens at quiescence (every survivor has applied the same
    // Δ stream), so the data bucket's own counter and any parity channel
    // counter for that column agree; `max` also covers partial collections.
    let mut ranks: BTreeSet<Rank> = BTreeSet::new();
    let mut watermark: Vec<u64> = vec![0; m];
    for (&idx, content) in collected {
        match content {
            ShardContent::Data {
                records, delta_seq, ..
            } => {
                ranks.extend(records.iter().map(|(r, _, _)| *r));
                if let Some(w) = watermark.get_mut(idx) {
                    *w = (*w).max(*delta_seq);
                }
            }
            ShardContent::Parity { records, col_seqs } => {
                ranks.extend(records.iter().map(|(r, _, _)| *r));
                for (w, s) in watermark.iter_mut().zip(col_seqs) {
                    *w = (*w).max(*s);
                }
            }
        }
    }
    let rank_pos: BTreeMap<Rank, usize> = ranks.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let n_ranks = ranks.len();
    let buf_len = n_ranks * cell_len;

    let mut shards: Vec<Option<Vec<u8>>> = vec![None; m + k];
    // Known-zero: data columns beyond the file's current size.
    for slot in shards.iter_mut().take(m).skip(existing_cols) {
        *slot = Some(vec![0u8; buf_len]);
    }
    for (&idx, content) in collected {
        let mut buf = vec![0u8; buf_len];
        match content {
            ShardContent::Data { records, .. } => {
                for (rank, _, payload) in records {
                    let Some(&pos) = rank_pos.get(rank) else {
                        continue;
                    };
                    let cell = crate::record::encode_cell(payload, cell_len);
                    copy_cell(&mut buf, pos, cell_len, &cell);
                }
            }
            ShardContent::Parity { records, .. } => {
                for (rank, _, cell) in records {
                    let Some(&pos) = rank_pos.get(rank) else {
                        continue;
                    };
                    copy_cell(&mut buf, pos, cell_len, cell);
                }
            }
        }
        // An index beyond m + k (inconsistent collection) is dropped here
        // and caught below as a reconstruction shortfall.
        if let Some(slot) = shards.get_mut(idx) {
            *slot = Some(buf);
        }
    }
    code.reconstruct(&mut shards)
        .map_err(|e| format!("reconstruct failed: {e}"))?;

    // Keys per (rank, col): from collected data shards and any collected
    // parity shard's key lists.
    let mut keys: BTreeMap<Rank, Vec<Option<Key>>> =
        ranks.iter().map(|r| (*r, vec![None; m])).collect();
    for (&idx, content) in collected {
        match content {
            ShardContent::Data { records, .. } => {
                for (rank, key, _) in records {
                    if let Some(slot) = keys.get_mut(rank).and_then(|v| v.get_mut(idx)) {
                        *slot = Some(*key);
                    }
                }
            }
            ShardContent::Parity { records, .. } => {
                for (rank, ks, _) in records {
                    let Some(slot) = keys.get_mut(rank) else {
                        continue;
                    };
                    for (dst, src) in slot.iter_mut().zip(ks) {
                        if src.is_some() {
                            *dst = *src;
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for &shard in rebuild {
        let Some(buf) = shards.get(shard).and_then(|s| s.as_ref()) else {
            return Err(format!("shard {shard} missing after reconstruction"));
        };
        if shard < m {
            // A data bucket: records are the ranks where this column holds
            // a key.
            let mut records = Vec::new();
            let mut max_rank: Option<Rank> = None;
            for (rank, pos) in &rank_pos {
                let key = keys.get(rank).and_then(|v| v.get(shard)).copied().flatten();
                if let Some(key) = key {
                    let Some(cell) = buf.get(pos * cell_len..(pos + 1) * cell_len) else {
                        return Err(format!("rank {rank} out of the decoded buffer"));
                    };
                    let Some(payload) = decode_cell(cell) else {
                        return Err(format!("rank {rank} decoded to a malformed cell"));
                    };
                    records.push((*rank, key, payload));
                    max_rank = Some(max_rank.map_or(*rank, |m0: Rank| m0.max(*rank)));
                }
            }
            out.push((
                shard,
                ShardContent::Data {
                    level: 0, // restored by the coordinator from file state
                    next_rank: max_rank.map_or(0, |r| r + 1),
                    delta_seq: watermark.get(shard).copied().unwrap_or(0),
                    records,
                },
            ));
        } else {
            // A parity bucket: one parity record per rank with any member.
            let mut records = Vec::new();
            for (rank, pos) in &rank_pos {
                let ks = keys.get(rank).cloned().unwrap_or_else(|| vec![None; m]);
                if ks.iter().any(Option::is_some) {
                    let Some(cell) = buf.get(pos * cell_len..(pos + 1) * cell_len) else {
                        return Err(format!("rank {rank} out of the decoded buffer"));
                    };
                    records.push((*rank, ks, cell.to_vec()));
                }
            }
            out.push((
                shard,
                ShardContent::Parity {
                    records,
                    col_seqs: watermark.clone(),
                },
            ));
        }
    }
    Ok(out)
}

/// Recompute `(n, i)` from the `(bucket, level)` pairs of a full scan —
/// algorithm A6: the split pointer sits exactly where the level drops by
/// one; if no drop exists the pointer is 0 and the level is uniform.
fn recompute_state(replies: &[(u64, u8)]) -> (u64, u8) {
    let mut by_bucket: Vec<(u64, u8)> = replies.to_vec();
    by_bucket.sort_unstable();
    debug_assert!(!by_bucket.is_empty());
    for w in by_bucket.windows(2) {
        if let [(_, j_prev), (b, j)] = w {
            if *j_prev == *j + 1 {
                return (*b, *j);
            }
        }
    }
    // Uniform level: n = 0.
    let i = by_bucket.first().map_or(0, |&(_, j)| j);
    debug_assert_eq!(by_bucket.len() as u64, 1u64 << i, "E1 cross-check");
    (0, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::GfField;
    use crate::record::encode_cell;

    #[test]
    fn recompute_state_finds_split_pointer() {
        // M = 6: levels 3,3,2,2,3,3 → n = 2, i = 2.
        let replies = vec![(0, 3), (1, 3), (2, 2), (3, 2), (4, 3), (5, 3)];
        assert_eq!(recompute_state(&replies), (2, 2));
        // Order must not matter.
        let mut shuffled = replies.clone();
        shuffled.reverse();
        assert_eq!(recompute_state(&shuffled), (2, 2));
    }

    #[test]
    fn recompute_state_uniform_levels() {
        let replies = vec![(0, 2), (1, 2), (2, 2), (3, 2)];
        assert_eq!(recompute_state(&replies), (0, 2));
        assert_eq!(recompute_state(&[(0, 0)]), (0, 0));
    }

    #[test]
    fn rebuild_shards_data_and_parity() {
        let m = 4;
        let k = 2;
        let cell_len = 12;
        let code = AnyCode::new(GfField::Gf8, m, k).unwrap();

        // Build a consistent group: 3 existing columns with some records.
        let data: Vec<Vec<(Rank, Key, Vec<u8>)>> = vec![
            vec![(0, 10, b"aa".to_vec()), (1, 11, b"bb".to_vec())],
            vec![(0, 20, b"cc".to_vec())],
            vec![(1, 31, b"dd".to_vec()), (2, 32, b"ee".to_vec())],
        ];
        // Parity from scratch.
        let ranks = [0u64, 1, 2];
        type ParityRecords = Vec<(Rank, Vec<Option<Key>>, Vec<u8>)>;
        let mut parity: Vec<ParityRecords> = vec![Vec::new(); k];
        for &rank in &ranks {
            let mut keys = vec![None; m];
            let mut cells: Vec<Vec<u8>> = vec![vec![0u8; cell_len]; m];
            for (c, recs) in data.iter().enumerate() {
                for (r, key, payload) in recs {
                    if *r == rank {
                        keys[c] = Some(*key);
                        cells[c] = encode_cell(payload, cell_len);
                    }
                }
            }
            let refs: Vec<&[u8]> = cells.iter().map(|c| c.as_slice()).collect();
            let pcells = code.encode(&refs).unwrap();
            for (q, list) in parity.iter_mut().enumerate() {
                list.push((rank, keys.clone(), pcells[q].clone()));
            }
        }

        // Lose data column 1 and parity 1; collect cols 0, 2 and parity 0.
        let mut collected = HashMap::new();
        collected.insert(
            0,
            ShardContent::Data {
                level: 5,
                next_rank: 2,
                delta_seq: 7,
                records: data[0].clone(),
            },
        );
        collected.insert(
            2,
            ShardContent::Data {
                level: 5,
                next_rank: 3,
                delta_seq: 9,
                records: data[2].clone(),
            },
        );
        collected.insert(
            m,
            ShardContent::Parity {
                records: parity[0].clone(),
                col_seqs: vec![7, 4, 9, 0],
            },
        );
        let rebuilt = rebuild_shards(m, k, cell_len, 3, &collected, &[1, m + 1], &code).unwrap();
        let by_shard: HashMap<usize, &ShardContent> =
            rebuilt.iter().map(|(s, c)| (*s, c)).collect();

        match by_shard[&1] {
            ShardContent::Data {
                next_rank,
                delta_seq,
                records,
                ..
            } => {
                assert_eq!(*next_rank, 1);
                // The lost column's Δ-sequence resumes from the surviving
                // parity channel's watermark.
                assert_eq!(*delta_seq, 4);
                assert_eq!(records, &vec![(0, 20, b"cc".to_vec())]);
            }
            _ => panic!("expected data shard"),
        }
        match by_shard[&(m + 1)] {
            ShardContent::Parity { records, col_seqs } => {
                assert_eq!(records.len(), parity[1].len());
                for (got, want) in records.iter().zip(&parity[1]) {
                    assert_eq!(got, want);
                }
                assert_eq!(col_seqs, &vec![7, 4, 9, 0]);
            }
            _ => panic!("expected parity shard"),
        }
    }

    #[test]
    fn rebuild_with_nonexistent_columns_as_zero() {
        // Group of m = 4 but only 1 existing column; k = 1. Lose the one
        // data column; rebuild from parity alone plus known-zero columns.
        let m = 4;
        let k = 1;
        let cell_len = 10;
        let code = AnyCode::new(GfField::Gf8, m, k).unwrap();
        let rec: (Rank, Key, Vec<u8>) = (0, 77, b"xyz".to_vec());
        let cell = encode_cell(&rec.2, cell_len);
        // Parity 0 is the XOR of the single member.
        let mut keys = vec![None; m];
        keys[0] = Some(77);
        let mut collected = HashMap::new();
        collected.insert(
            m,
            ShardContent::Parity {
                records: vec![(0, keys, cell)],
                col_seqs: vec![1, 0, 0, 0],
            },
        );
        let rebuilt = rebuild_shards(m, k, cell_len, 1, &collected, &[0], &code).unwrap();
        match &rebuilt[0].1 {
            ShardContent::Data {
                records, next_rank, ..
            } => {
                assert_eq!(records, &vec![rec]);
                assert_eq!(*next_rank, 1);
            }
            _ => panic!("expected data shard"),
        }
    }

    #[test]
    fn rebuild_empty_group_yields_empty_shards() {
        let m = 2;
        let k = 1;
        let code = AnyCode::new(GfField::Gf8, m, k).unwrap();
        let mut collected = HashMap::new();
        collected.insert(
            1,
            ShardContent::Data {
                level: 1,
                next_rank: 0,
                delta_seq: 0,
                records: Vec::new(),
            },
        );
        collected.insert(
            m,
            ShardContent::Parity {
                records: Vec::new(),
                col_seqs: vec![0, 0],
            },
        );
        let rebuilt = rebuild_shards(m, k, 8, 2, &collected, &[0], &code).unwrap();
        match &rebuilt[0].1 {
            ShardContent::Data { records, .. } => assert!(records.is_empty()),
            _ => panic!("expected data shard"),
        }
    }
}
