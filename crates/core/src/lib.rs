//! **LH\*RS** — a high-availability Scalable Distributed Data Structure
//! using Reed–Solomon codes (Litwin & Schwarz, SIGMOD 2000): the paper's
//! primary contribution, implemented end to end over the deterministic
//! multicomputer simulator of [`lhrs_sim`].
//!
//! # The scheme in one paragraph
//!
//! An LH\*RS file is an LH\* file (linear hashing distributed over one
//! bucket per server, clients with stale-tolerant images, splits driven by a
//! coordinator) whose data buckets are partitioned into **bucket groups** of
//! `m` consecutive buckets. Each group carries `k` **parity buckets** on
//! separate servers. Within a group, the records holding *rank* `r` in each
//! member bucket form a **record group**; its `m` (zero-padded) payloads are
//! encoded by a systematic Reed–Solomon code into `k` parity records stored
//! one per parity bucket. Every insert, update, delete, or split-move sends
//! a Δ (`new ⊕ old`) to the group's parity buckets, which fold it in with
//! one Galois-field multiply-accumulate. Any `k` unavailable buckets per
//! group — data or parity, in any mix — are rebuilt from the surviving `m`
//! by erasure decoding; a single record can be served in *degraded mode*
//! while the rebuild runs. Because parity cost is `k/m` storage and `k`
//! messages per insert, `k` can grow with the file (*scalable
//! availability*) to hold file-level reliability constant as `M → ∞`.
//!
//! # Quick start
//!
//! ```
//! use lhrs_core::{Config, LhrsFile};
//!
//! let mut file = LhrsFile::new(Config::default()).unwrap();
//! for key in 0..500u64 {
//!     file.insert(key, format!("value-{key}").into_bytes()).unwrap();
//! }
//! assert_eq!(file.lookup(42).unwrap().unwrap(), b"value-42");
//!
//! // Kill a data bucket and read through the failure (degraded mode +
//! // automatic rebuild onto a hot spare):
//! let victim = file.address_of(42);
//! file.crash_data_bucket(victim);
//! assert_eq!(file.lookup(42).unwrap().unwrap(), b"value-42");
//! ```
//!
//! # Module map
//!
//! | module | role |
//! |--------|------|
//! | [`mod@file`] | [`LhrsFile`]: the synchronous driver API around the simulation |
//! | `coordinator` | split management, availability scaling, failure detection, recovery orchestration |
//! | `data_bucket` | primary-record servers: storage, A2 forwarding, Δ-emission, splitting |
//! | `parity_bucket` | parity-record servers: Δ-commits, shard transfer for decode |
//! | `client` | client actor: image (A1/A3), retries, timeout-based failure reporting, scans |
//! | [`availability`] | closed-form file availability `P(M; m, k, p)` for the F2 curves |
//! | `record` | payload cells: `[len | bytes | zero-pad]` fixed-size coding cells |
//! | `msg` | the wire protocol and per-kind accounting labels |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod availability;
pub mod client;
pub mod code;
mod config;
pub(crate) mod convert;
pub mod coordinator;
pub mod data_bucket;
mod error;
pub mod file;
pub mod msg;
pub mod node;
pub mod parity_bucket;
pub mod record;
pub mod registry;
pub mod storage;
pub mod wire;

pub use api::{KvClient, OpOutcome};
pub use code::GfField;
pub use config::{
    Config, ConfigBuilder, ConfigError, FsyncPolicy, ScanTermination, UpgradeMode, MAX_RECORD_LEN,
};
pub use coordinator::CoordEvent;
pub use error::Error;
pub use file::{LhrsFile, RecoveryReport, StorageReport};
pub use lhrs_sim::{FaultPlan, NodeId, Partition};
pub use msg::{FilterSpec, OpResult};
pub use record::GroupKey;

/// Record keys are unsigned 64-bit integers (pre-scramble clustered keys
/// with [`lhrs_lh::scramble`]).
pub type Key = u64;

/// Per-bucket record rank: the `r` of the record-group key `(g, r)`.
pub type Rank = u64;
