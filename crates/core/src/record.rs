//! Records, record-group keys, and fixed-size coding cells.
//!
//! Parity arithmetic needs equal-length buffers, but applications store
//! variable-length payloads. LH\*RS pads; we make the padding carry the
//! length so that erasure decoding recovers the exact payload: a **cell**
//! is `[len: u32 LE | payload bytes | zero padding]` of fixed size
//! `4 + record_len`. Cells are what flows in Δ-messages and what parity
//! buckets accumulate.

use crate::{Key, Rank};

/// The logical record-group key `(g, r)`: bucket group and rank. All
/// records with the same `(g, r)` — at most one per bucket of group `g` —
/// form one record group protected by one parity record per parity bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey {
    /// Bucket-group number `g`.
    pub group: u64,
    /// Rank `r` within the group.
    pub rank: Rank,
}

/// A primary record as stored in a data bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Application key.
    pub key: Key,
    /// Application payload (variable length, ≤ `record_len`).
    pub payload: Vec<u8>,
}

/// Encode a payload into a fixed-size coding cell.
///
/// # Panics
/// Panics if `payload.len() > cell_len - 4`; the driver validates payload
/// sizes before they reach this point.
pub fn encode_cell(payload: &[u8], cell_len: usize) -> Vec<u8> {
    assert!(payload.len() + 4 <= cell_len, "payload exceeds cell");
    let mut cell = vec![0u8; cell_len];
    cell[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    cell[4..4 + payload.len()].copy_from_slice(payload);
    cell
}

/// Decode a coding cell back into the exact payload.
///
/// Returns `None` if the cell is malformed (length prefix beyond the cell),
/// which after a correct RS decode indicates corruption.
pub fn decode_cell(cell: &[u8]) -> Option<Vec<u8>> {
    if cell.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(cell[..4].try_into().ok()?) as usize;
    if 4 + len > cell.len() {
        return None;
    }
    Some(cell[4..4 + len].to_vec())
}

/// Whether a cell is all zeroes — the encoding of "no record at this rank".
pub fn cell_is_zero(cell: &[u8]) -> bool {
    cell.iter().all(|&b| b == 0)
}

/// `a ⊕ b` for two cells (the Δ of an update, or of an insert/delete
/// against the implicit zero cell). Routed through the GF kernel so the
/// Δ-path exercises the same (vectorised, prefix-degrading) XOR the parity
/// encode path uses; mismatched lengths degrade to the common prefix.
pub fn cell_delta(a: &[u8], b: &[u8]) -> Vec<u8> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = a.get(..a.len().min(b.len())).unwrap_or(a).to_vec();
    lhrs_gf::add_slice(b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip_various_lengths() {
        for len in [0usize, 1, 10, 60] {
            let payload: Vec<u8> = (0..len as u32).map(|i| (i * 3 + 1) as u8).collect();
            let cell = encode_cell(&payload, 68);
            assert_eq!(cell.len(), 68);
            assert_eq!(decode_cell(&cell).unwrap(), payload);
        }
    }

    #[test]
    fn empty_payload_is_not_zero_cell() {
        // An empty payload still has a zero length prefix — which IS the
        // zero cell. Distinguishing "record with empty payload" from "no
        // record" is done by the key lists in parity records, never by cell
        // content; this test documents that deliberately.
        let cell = encode_cell(&[], 8);
        assert!(cell_is_zero(&cell));
    }

    #[test]
    #[should_panic(expected = "exceeds cell")]
    fn oversized_payload_panics() {
        encode_cell(&[0u8; 10], 12);
    }

    #[test]
    fn malformed_cells_rejected() {
        assert_eq!(decode_cell(&[1, 2]), None);
        // Length prefix claims 100 bytes in a 8-byte cell.
        let mut bad = vec![0u8; 8];
        bad[0] = 100;
        assert_eq!(decode_cell(&bad), None);
    }

    #[test]
    fn delta_is_xor() {
        let a = encode_cell(b"abc", 10);
        let b = encode_cell(b"xy", 10);
        let d = cell_delta(&a, &b);
        let mut expect = a.clone();
        for (e, y) in expect.iter_mut().zip(&b) {
            *e ^= y;
        }
        assert_eq!(d, expect);
        // Applying the delta to `a` yields `b`.
        assert_eq!(cell_delta(&a, &d), b);
    }
}
