//! Property-based tests of the MDS guarantee and the incremental-parity
//! protocol: for random (m, k), random payloads, and *any* erasure pattern
//! of weight ≤ k, decoding recovers the original shards exactly — the
//! invariant LH*RS's k-availability claim rests on. Seeded cases via
//! `lhrs-testkit`.

use lhrs_gf::{add_slice, Gf16, Gf8};
use lhrs_rs::{Matrix, RsCode, RsError};
use lhrs_testkit::{cases, Rng};

/// Random (m, k, shard_len) dimensions matching the old proptest strategy.
fn params(rng: &mut Rng) -> (usize, usize, usize) {
    (
        rng.range_usize(1, 10),
        rng.range_usize(1, 5),
        rng.range_usize(1, 80),
    )
}

fn make_data(m: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Rng::new(seed);
    (0..m).map(|_| rng.bytes(len)).collect()
}

fn erasure_set(n: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut rng = Rng::new(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx.truncate(count);
    idx
}

#[test]
fn gf8_any_k_erasures_recoverable() {
    cases("gf8_any_k_erasures_recoverable", 64, |rng| {
        let (m, k, len) = params(rng);
        let dseed = rng.next_u64();
        let eseed = rng.next_u64();
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        let data = make_data(m, len, dseed);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();

        for erase_count in 0..=k {
            let erased = erasure_set(m + k, erase_count, eseed ^ erase_count as u64);
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for &e in &erased {
                shards[e] = None;
            }
            code.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_deref(), Some(&full[i][..]), "erased {erased:?}");
            }
        }
    });
}

#[test]
fn gf16_any_k_erasures_recoverable() {
    cases("gf16_any_k_erasures_recoverable", 64, |rng| {
        let (m, k, len8) = params(rng);
        let dseed = rng.next_u64();
        let eseed = rng.next_u64();
        let len = len8 * 2; // even for GF(2^16)
        let code: RsCode<Gf16> = RsCode::new(m, k).unwrap();
        let data = make_data(m, len, dseed);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();

        let erased = erasure_set(m + k, k, eseed);
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &e in &erased {
            shards[e] = None;
        }
        code.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]), "erased {erased:?}");
        }
    });
}

/// A sequence of record inserts/updates/deletes maintained via
/// apply_delta leaves the parity identical to a from-scratch encode of
/// the final state — the parity buckets never drift.
#[test]
fn incremental_parity_never_drifts() {
    cases("incremental_parity_never_drifts", 64, |rng| {
        let (m, k, len) = params(rng);
        let dseed = rng.next_u64();
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        // Start empty: all-zero shards and parity.
        let mut data = vec![vec![0u8; len]; m];
        let mut parity = vec![vec![0u8; len]; k];

        for _ in 0..rng.range_usize(1, 20) {
            let i = rng.range_usize(0, m);
            let seed = rng.next_u64();
            let new_payload = &make_data(1, len, seed ^ dseed)[0];
            // Δ = new ⊕ old; an all-zero `new` models a delete.
            let mut delta = data[i].clone();
            add_slice(new_payload, &mut delta);
            for (j, p) in parity.iter_mut().enumerate() {
                code.apply_delta(i, j, &delta, p);
            }
            data[i] = new_payload.clone();
        }

        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let direct = code.encode(&refs).unwrap();
        assert_eq!(parity, direct);
    });
}

/// reconstruct_one agrees with full reconstruction for every data shard
/// and every choice of m survivors.
#[test]
fn reconstruct_one_agrees_with_full() {
    cases("reconstruct_one_agrees_with_full", 64, |rng| {
        let (m, k, len) = params(rng);
        let dseed = rng.next_u64();
        let eseed = rng.next_u64();
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        let data = make_data(m, len, dseed);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();

        let target = (eseed % m as u64) as usize;
        // Drop the target plus (k-1) more shards; use the rest.
        let mut dropped = erasure_set(m + k, k, eseed);
        if !dropped.contains(&target) {
            dropped[0] = target;
        }
        let avail: Vec<(usize, &[u8])> = (0..m + k)
            .filter(|i| !dropped.contains(i))
            .map(|i| (i, full[i].as_slice()))
            .collect();
        let got = code.reconstruct_one(target, &avail).unwrap();
        assert_eq!(got, data[target].clone());
    });
}

/// Random matrices over GF(2^8): if inversion succeeds, A·A⁻¹ = I; the
/// operation never panics on singular input.
#[test]
fn matrix_inverse_roundtrips_or_rejects() {
    cases("matrix_inverse_roundtrips_or_rejects", 64, |rng| {
        let n = rng.range_usize(1, 7);
        let entries = rng.bytes(49);
        let m = Matrix::<Gf8>::from_fn(n, n, |r, c| entries[r * 7 + c]);
        match m.inverse() {
            Ok(inv) => {
                assert_eq!(m.mul(&inv).unwrap(), Matrix::<Gf8>::identity(n));
                assert_eq!(inv.mul(&m).unwrap(), Matrix::<Gf8>::identity(n));
            }
            Err(RsError::SingularMatrix) => {
                // Fine: the matrix genuinely had no inverse. Cross-check by
                // showing its rows are linearly dependent under Gaussian
                // elimination... which is what inverse() already did; just
                // make sure is_nonsingular agrees.
                assert!(!m.is_nonsingular());
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}

/// Cauchy matrices are always invertible, over both fields.
#[test]
fn cauchy_matrices_always_invertible() {
    for n in 1usize..12 {
        let a = Matrix::<Gf8>::cauchy(n, n).unwrap();
        assert!(a.is_nonsingular());
        let b = Matrix::<Gf16>::cauchy(n, n).unwrap();
        assert!(b.is_nonsingular());
    }
}

#[test]
fn over_erasure_always_rejected() {
    cases("over_erasure_always_rejected", 64, |rng| {
        let (m, k, len) = params(rng);
        let dseed = rng.next_u64();
        let eseed = rng.next_u64();
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        let data = make_data(m, len, dseed);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        for &e in &erasure_set(m + k, k + 1, eseed) {
            shards[e] = None;
        }
        let over_erased = matches!(
            code.reconstruct(&mut shards),
            Err(RsError::TooManyErasures { .. })
        );
        assert!(over_erased);
    });
}
