//! Systematic generalized Reed–Solomon erasure coding over GF(2^f) — the
//! coding layer of LH\*RS.
//!
//! An LH\*RS *bucket group* has `m` data buckets and `k` parity buckets. For
//! every record group, the `m` (zero-padded) data payloads `d_0 … d_{m-1}`
//! are protected by `k` parity payloads
//!
//! ```text
//! p_j = Σ_i Γ[i][j] · d_i        (j = 0 … k-1, arithmetic over GF(2^f))
//! ```
//!
//! where `Γ` is the parity part of a systematic generator matrix `[I | Γ]`.
//! `Γ` is built from a Cauchy matrix and row/column-normalised so that its
//! **first column and first row are all ones** — exactly the LH\*RS
//! construction: the first parity bucket computes a plain XOR (making
//! `k = 1` behave like the predecessor scheme LH\*g, and keeping the first
//! parity bucket cheap at every `k`), and updates originating at the first
//! data bucket of each group need no multiplication. Every square submatrix
//! of a (normalised) Cauchy matrix is nonsingular, so the code is MDS: *any*
//! `k` lost buckets — data or parity — are recoverable from the surviving
//! `m`.
//!
//! The three operations LH\*RS needs are all here:
//!
//! * [`RsCode::encode`] — full parity computation (bucket recovery,
//!   group upgrades);
//! * [`RsCode::apply_delta`] — incremental parity maintenance: commit
//!   `Δ = new ⊕ old` of one record into one parity buffer (the per-insert /
//!   per-update message handler of a parity bucket);
//! * [`RsCode::reconstruct`] — erasure decoding of up to `k` missing
//!   shards by inverting an `m×m` submatrix of `[I | Γ]`.
//!
//! ```
//! use lhrs_rs::RsCode;
//! use lhrs_gf::Gf8;
//!
//! let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 * 3 + 1; 16]).collect();
//! let mut shards: Vec<Option<Vec<u8>>> =
//!     data.iter().cloned().map(Some).chain([None, None]).collect();
//! code.reconstruct(&mut shards).unwrap(); // fills in the two parity shards
//! // Lose two data buckets:
//! shards[1] = None;
//! shards[3] = None;
//! code.reconstruct(&mut shards).unwrap();
//! assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
//! assert_eq!(shards[3].as_deref(), Some(&data[3][..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod error;
mod matrix;

pub use code::RsCode;
pub use error::RsError;
pub use matrix::Matrix;
