//! Error type for the Reed–Solomon layer.

use std::fmt;

/// Errors returned by [`crate::RsCode`] and [`crate::Matrix`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// `m` or `k` is zero, or `m + k` exceeds what the field supports
    /// (Cauchy construction needs `m + k ≤ 2^f`).
    InvalidParameters {
        /// Requested number of data shards.
        m: usize,
        /// Requested number of parity shards.
        k: usize,
        /// Field order 2^f.
        field_order: u32,
    },
    /// More shards are missing than the code can tolerate.
    TooManyErasures {
        /// Number of missing shards.
        missing: usize,
        /// Maximum recoverable (`k`).
        tolerated: usize,
    },
    /// The shard vector passed to decode has the wrong length (`!= m + k`).
    WrongShardCount {
        /// Shards supplied.
        got: usize,
        /// Shards expected (`m + k`).
        expected: usize,
    },
    /// The same shard index was supplied more than once. Without this check
    /// a duplicated survivor list builds a singular decode matrix and fails
    /// deep inside `inverse()` with no hint of the real cause.
    DuplicateShardIndex {
        /// The repeated shard index.
        index: usize,
    },
    /// Present shards disagree in length, or a shard length is not a
    /// multiple of the field's symbol size.
    InconsistentShardLength,
    /// A matrix that must be invertible was singular. With the Cauchy
    /// construction this indicates memory corruption or a logic error, never
    /// a legal input.
    SingularMatrix,
    /// Matrix dimensions do not match for the requested operation.
    DimensionMismatch,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidParameters { m, k, field_order } => write!(
                f,
                "invalid RS parameters m={m}, k={k}: need m ≥ 1, k ≥ 1, m + k ≤ {field_order}"
            ),
            RsError::TooManyErasures { missing, tolerated } => write!(
                f,
                "{missing} shards missing but the code tolerates only {tolerated}"
            ),
            RsError::WrongShardCount { got, expected } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            RsError::DuplicateShardIndex { index } => {
                write!(f, "shard index {index} supplied more than once")
            }
            RsError::InconsistentShardLength => {
                write!(f, "present shards have inconsistent or misaligned lengths")
            }
            RsError::SingularMatrix => write!(f, "matrix is singular"),
            RsError::DimensionMismatch => write!(f, "matrix dimension mismatch"),
        }
    }
}

impl std::error::Error for RsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RsError::InvalidParameters {
            m: 300,
            k: 3,
            field_order: 256,
        };
        let s = e.to_string();
        assert!(s.contains("300") && s.contains("256"), "{s}");
        assert!(RsError::SingularMatrix.to_string().contains("singular"));
    }
}
