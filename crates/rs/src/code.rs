//! The systematic generalized Reed–Solomon code used by LH\*RS bucket
//! groups.

use lhrs_gf::{add_slice, GaloisField};

use crate::{Matrix, RsError};

/// A systematic `(m + k, m)` generalized Reed–Solomon erasure code over the
/// field `F`.
///
/// `m` is the bucket-group size (data shards), `k` the availability level
/// (parity shards). The generator is `[I | Γ]` with `Γ` a normalised Cauchy
/// matrix whose first row and first column are all ones (see the crate
/// docs); any `k` erasures among the `m + k` shards are recoverable.
#[derive(Clone, Debug)]
pub struct RsCode<F: GaloisField> {
    m: usize,
    k: usize,
    gamma: Matrix<F>,
}

impl<F: GaloisField> RsCode<F> {
    /// Create the code for `m` data and `k` parity shards.
    ///
    /// # Errors
    /// [`RsError::InvalidParameters`] when `m == 0`, `k == 0`, or
    /// `m + k > 2^f` (the Cauchy construction needs that many distinct
    /// field points).
    pub fn new(m: usize, k: usize) -> Result<Self, RsError> {
        if m == 0 || k == 0 {
            return Err(RsError::InvalidParameters {
                m,
                k,
                field_order: F::ORDER,
            });
        }
        let mut gamma = Matrix::<F>::cauchy(m, k)?;
        // Normalise: first make column 0 all ones (row scaling), then row 0
        // all ones (column scaling; column 0 keeps its ones because
        // Γ[0][0] = 1 after the row pass). Row/column scaling by nonzero
        // constants preserves the all-square-submatrices-nonsingular
        // property of Cauchy matrices, hence the code stays MDS.
        for i in 0..m {
            // Cauchy entries are nonzero, so inversion cannot fail; surface
            // the impossible case as the decoder's singularity error rather
            // than aborting.
            let inv = F::inv(gamma.get(i, 0)).ok_or(RsError::SingularMatrix)?;
            gamma.scale_row(i, inv);
        }
        for j in 0..k {
            let inv = F::inv(gamma.get(0, j)).ok_or(RsError::SingularMatrix)?;
            gamma.scale_col(j, inv);
        }
        Ok(RsCode { m, k, gamma })
    }

    /// Number of data shards (bucket-group size `m`).
    pub fn data_shards(&self) -> usize {
        self.m
    }

    /// Number of parity shards (availability level `k`).
    pub fn parity_shards(&self) -> usize {
        self.k
    }

    /// Total shards `m + k`.
    pub fn total_shards(&self) -> usize {
        self.m + self.k
    }

    /// Generator coefficient `Γ[i][j]`: the weight of data shard `i` in
    /// parity shard `j`.
    pub fn coeff(&self, data_index: usize, parity_index: usize) -> F::Elem {
        self.gamma.get(data_index, parity_index)
    }

    /// Compute all `k` parity buffers from exactly `m` equal-length data
    /// buffers.
    ///
    /// ```
    /// use lhrs_rs::RsCode;
    /// use lhrs_gf::Gf8;
    ///
    /// let code: RsCode<Gf8> = RsCode::new(2, 1).unwrap();
    /// let parity = code.encode(&[&[1, 2][..], &[3, 4][..]]).unwrap();
    /// // k = 1 parity is the XOR of the data shards.
    /// assert_eq!(parity, vec![vec![1 ^ 3, 2 ^ 4]]);
    /// ```
    ///
    /// # Errors
    /// [`RsError::WrongShardCount`] if `data.len() != m`;
    /// [`RsError::InconsistentShardLength`] on ragged or misaligned buffers.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.m {
            return Err(RsError::WrongShardCount {
                got: data.len(),
                expected: self.m,
            });
        }
        // `data.len() == m ≥ 1` was just checked, so `first()` is `Some`.
        let len = data.first().map_or(0, |d| d.len());
        self.check_len(len)?;
        if data.iter().any(|d| d.len() != len) {
            return Err(RsError::InconsistentShardLength);
        }
        let mut parity = vec![vec![0u8; len]; self.k];
        for (i, d) in data.iter().enumerate() {
            self.add_shard_into_parity(i, d, &mut parity);
        }
        Ok(parity)
    }

    /// Compute all `k` parity buffers from a *sparse* record group: only the
    /// listed `(data_index, payload)` members are nonzero, the rest are
    /// implicit zero buffers of length `len`. This is how LH\*RS encodes a
    /// record group with fewer than `m` live members.
    ///
    /// # Errors
    /// [`RsError::WrongShardCount`] on an out-of-range index;
    /// [`RsError::InconsistentShardLength`] on ragged or misaligned buffers.
    pub fn encode_sparse(
        &self,
        members: &[(usize, &[u8])],
        len: usize,
    ) -> Result<Vec<Vec<u8>>, RsError> {
        self.check_len(len)?;
        let mut parity = vec![vec![0u8; len]; self.k];
        for &(i, d) in members {
            if i >= self.m {
                return Err(RsError::WrongShardCount {
                    got: i,
                    expected: self.m,
                });
            }
            if d.len() != len {
                return Err(RsError::InconsistentShardLength);
            }
            self.add_shard_into_parity(i, d, &mut parity);
        }
        Ok(parity)
    }

    /// Commit a record delta into one parity buffer:
    /// `parity ^= Γ[data_index][parity_index] · delta`.
    ///
    /// ```
    /// use lhrs_rs::RsCode;
    /// use lhrs_gf::Gf8;
    ///
    /// let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
    /// let mut parity = vec![0u8; 8];
    /// let old = [5u8; 8];
    /// let new = [9u8; 8];
    /// let delta: Vec<u8> = old.iter().zip(&new).map(|(a, b)| a ^ b).collect();
    /// code.apply_delta(2, 1, &old, &mut parity);   // record appears
    /// code.apply_delta(2, 1, &delta, &mut parity); // record updated
    /// let mut direct = vec![0u8; 8];
    /// code.apply_delta(2, 1, &new, &mut direct);
    /// assert_eq!(parity, direct);
    /// ```
    ///
    /// This is the whole computational work of a parity bucket on an LH\*RS
    /// insert, update, or delete (`Δ = new ⊕ old`, with absent = all-zero).
    /// For `parity_index == 0` the coefficient is 1, so the commit is a pure
    /// XOR — the LH\*g-compatible fast path.
    ///
    /// Out-of-range indices make the call a no-op and mismatched buffer
    /// lengths degrade to the common prefix (see
    /// [`GaloisField::mul_add_slice`]): a malformed Δ from a remote data
    /// bucket must surface as a parity divergence caught by scans, not
    /// abort the parity actor — an abort here looks exactly like a killed
    /// bucket and triggers a needless group recovery.
    pub fn apply_delta(
        &self,
        data_index: usize,
        parity_index: usize,
        delta: &[u8],
        parity: &mut [u8],
    ) {
        if data_index >= self.m || parity_index >= self.k {
            return;
        }
        F::mul_add_slice(self.coeff(data_index, parity_index), delta, parity);
    }

    /// Reconstruct every missing shard in place. `shards.len()` must be
    /// `m + k`; indices `0..m` are data shards, `m..m+k` parity shards.
    /// Present shards are left untouched.
    ///
    /// # Errors
    /// [`RsError::WrongShardCount`], [`RsError::TooManyErasures`],
    /// [`RsError::InconsistentShardLength`] — see the variants.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::WrongShardCount {
                got: shards.len(),
                expected: self.total_shards(),
            });
        }
        let missing: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > self.k {
            return Err(RsError::TooManyErasures {
                missing: missing.len(),
                tolerated: self.k,
            });
        }
        // `missing.len() ≤ k < m + k`, so at least one shard is present.
        let Some(len) = shards.iter().flatten().map(Vec::len).next() else {
            return Err(RsError::TooManyErasures {
                missing: missing.len(),
                tolerated: self.k,
            });
        };
        self.check_len(len)?;
        if shards.iter().flatten().any(|s| s.len() != len) {
            return Err(RsError::InconsistentShardLength);
        }

        // Phase 1: recover missing *data* shards by inverting the m×m
        // submatrix of [I | Γ] formed by m available shard columns.
        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.m).collect();
        if !missing_data.is_empty() {
            let avail: Vec<usize> = shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(i, _)| i)
                .take(self.m)
                .collect();
            if avail.len() != self.m {
                return Err(RsError::TooManyErasures {
                    missing: missing.len(),
                    tolerated: self.k,
                });
            }
            // A[r][t] = G[r][avail[t]]: the generator column of each chosen
            // shard; c_avail = d · A, hence d = c_avail · A⁻¹.
            // t < m == avail.len() (checked above); an impossible miss
            // degrades to column 0, making the matrix singular and the
            // decode fail cleanly instead of aborting the actor.
            let a = Matrix::<F>::from_fn(self.m, self.m, |r, t| {
                let col = avail.get(t).copied().unwrap_or(0);
                if col < self.m {
                    if r == col {
                        F::one()
                    } else {
                        F::zero()
                    }
                } else {
                    self.gamma.get(r, col.saturating_sub(self.m))
                }
            });
            let inv = a.inverse()?;
            for &x in &missing_data {
                let mut buf = vec![0u8; len];
                for (t, &src) in avail.iter().enumerate() {
                    let c = inv.get(t, x);
                    let Some(shard) = shards.get(src).and_then(|s| s.as_deref()) else {
                        return Err(RsError::TooManyErasures {
                            missing: missing.len(),
                            tolerated: self.k,
                        });
                    };
                    F::mul_add_slice(c, shard, &mut buf);
                }
                if let Some(slot) = shards.get_mut(x) {
                    *slot = Some(buf);
                }
            }
        }

        // Phase 2: recompute missing parity shards from the (now complete)
        // data shards.
        for &x in missing.iter().filter(|&&i| i >= self.m) {
            let j = x - self.m;
            let mut buf = vec![0u8; len];
            for (i, shard) in shards.iter().take(self.m).enumerate() {
                let c = self.gamma.get(i, j);
                // Phase 1 restored every data shard, so this is always Some.
                let Some(shard) = shard.as_deref() else {
                    return Err(RsError::TooManyErasures {
                        missing: missing.len(),
                        tolerated: self.k,
                    });
                };
                F::mul_add_slice(c, shard, &mut buf);
            }
            // Borrow of `shards` above has ended; write the parity back.
            if let Some(slot) = shards.get_mut(x) {
                *slot = Some(buf);
            }
        }
        Ok(())
    }

    /// Reconstruct a single data shard without materialising the others —
    /// the record-level degraded-mode read of LH\*RS (answer a key search
    /// while the bucket rebuild is still running).
    ///
    /// `available` supplies at least `m` shards as `(shard_index, payload)`.
    ///
    /// # Errors
    /// [`RsError::TooManyErasures`] if fewer than `m` shards are supplied;
    /// [`RsError::DuplicateShardIndex`] if a shard index repeats (a
    /// duplicated survivor list would otherwise build a singular decode
    /// matrix and fail opaquely inside the inversion);
    /// length errors as for [`RsCode::reconstruct`].
    pub fn reconstruct_one(
        &self,
        target_data_index: usize,
        available: &[(usize, &[u8])],
    ) -> Result<Vec<u8>, RsError> {
        if available.len() < self.m {
            return Err(RsError::TooManyErasures {
                missing: self.total_shards() - available.len(),
                tolerated: self.k,
            });
        }
        let mut seen = vec![false; self.total_shards()];
        for &(idx, _) in available {
            if idx >= self.total_shards() {
                return Err(RsError::WrongShardCount {
                    got: idx,
                    expected: self.total_shards(),
                });
            }
            let dup = seen
                .get_mut(idx)
                .map(|s| std::mem::replace(s, true))
                .unwrap_or(true);
            if dup {
                return Err(RsError::DuplicateShardIndex { index: idx });
            }
        }
        // `available.len() ≥ m` was checked on entry.
        let Some(chosen) = available.get(..self.m) else {
            return Err(RsError::TooManyErasures {
                missing: self.total_shards() - available.len(),
                tolerated: self.k,
            });
        };
        let len = chosen.first().map_or(0, |(_, s)| s.len());
        self.check_len(len)?;
        if chosen.iter().any(|(_, s)| s.len() != len) {
            return Err(RsError::InconsistentShardLength);
        }
        // t < m == chosen.len() (by the get(..m) above); an impossible miss
        // degrades to column 0 — singular matrix, clean decode error.
        let a = Matrix::<F>::from_fn(self.m, self.m, |r, t| {
            let col = chosen.get(t).map_or(0, |c| c.0);
            if col < self.m {
                if r == col {
                    F::one()
                } else {
                    F::zero()
                }
            } else {
                self.gamma.get(r, col.saturating_sub(self.m))
            }
        });
        let inv = a.inverse()?;
        let mut buf = vec![0u8; len];
        for (t, &(_, shard)) in chosen.iter().enumerate() {
            F::mul_add_slice(inv.get(t, target_data_index), shard, &mut buf);
        }
        Ok(buf)
    }

    /// XOR-combine `delta` into `acc` — re-exported here so callers coding
    /// against `RsCode` don't need the field crate for the common case.
    pub fn xor_into(delta: &[u8], acc: &mut [u8]) {
        add_slice(delta, acc);
    }

    /// `parity[j] ^= Γ[i][j] · shard` for every parity buffer — the inner
    /// loop of both dense and sparse encoding.
    fn add_shard_into_parity(&self, i: usize, shard: &[u8], parity: &mut [Vec<u8>]) {
        for (j, p) in parity.iter_mut().enumerate() {
            F::mul_add_slice(self.gamma.get(i, j), shard, p);
        }
    }

    fn check_len(&self, len: usize) -> Result<(), RsError> {
        if !len.is_multiple_of(F::SYMBOL_BYTES) {
            return Err(RsError::InconsistentShardLength);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhrs_gf::{Gf16, Gf4, Gf8};

    fn sample_data(m: usize, len: usize) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 131 + b * 7 + 3) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn first_parity_column_is_all_ones() {
        for (m, k) in [(1, 1), (4, 1), (4, 3), (16, 4), (128, 8)] {
            let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
            for i in 0..m {
                assert_eq!(code.coeff(i, 0), 1, "m={m} k={k} i={i}");
            }
        }
    }

    #[test]
    fn first_data_row_is_all_ones() {
        let code: RsCode<Gf8> = RsCode::new(8, 4).unwrap();
        for j in 0..4 {
            assert_eq!(code.coeff(0, j), 1);
        }
    }

    #[test]
    fn parity_zero_is_xor_of_data() {
        let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
        let data = sample_data(4, 32);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut xor = vec![0u8; 32];
        for d in &data {
            add_slice(d, &mut xor);
        }
        assert_eq!(parity[0], xor);
    }

    #[test]
    fn reconstruct_all_single_and_double_erasures() {
        let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
        let data = sample_data(4, 24);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        let n = full.len();
        for a in 0..n {
            for b in a..n {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                code.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(
                        s.as_deref(),
                        Some(&full[i][..]),
                        "erased ({a},{b}) shard {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_detected() {
        let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            code.reconstruct(&mut shards),
            Err(RsError::TooManyErasures {
                missing: 3,
                tolerated: 2
            })
        ));
    }

    #[test]
    fn delta_commit_equals_reencoding() {
        let code: RsCode<Gf8> = RsCode::new(4, 3).unwrap();
        let mut data = sample_data(4, 16);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity = code.encode(&refs).unwrap();

        // Update record 2 via delta on every parity shard.
        let new_payload: Vec<u8> = (0..16).map(|b| (b * 17 + 1) as u8).collect();
        let mut delta = data[2].clone();
        add_slice(&new_payload, &mut delta);
        for (j, p) in parity.iter_mut().enumerate() {
            code.apply_delta(2, j, &delta, p);
        }
        data[2] = new_payload;

        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let direct = code.encode(&refs).unwrap();
        assert_eq!(parity, direct);
    }

    #[test]
    fn sparse_encode_matches_dense_with_zero_fill() {
        let code: RsCode<Gf8> = RsCode::new(6, 2).unwrap();
        let d1 = vec![9u8; 10];
        let d4 = vec![200u8; 10];
        let sparse = code.encode_sparse(&[(1, &d1), (4, &d4)], 10).unwrap();
        let zero = vec![0u8; 10];
        let dense_in: Vec<&[u8]> = vec![&zero, &d1, &zero, &zero, &d4, &zero];
        let dense = code.encode(&dense_in).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn reconstruct_one_during_degraded_mode() {
        let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
        let data = sample_data(4, 12);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        // Shard 1 and 3 lost; rebuild only shard 3 from shards {0, 2, p0, p1}.
        let avail: Vec<(usize, &[u8])> = vec![
            (0, data[0].as_slice()),
            (2, data[2].as_slice()),
            (4, parity[0].as_slice()),
            (5, parity[1].as_slice()),
        ];
        let got = code.reconstruct_one(3, &avail).unwrap();
        assert_eq!(got, data[3]);
    }

    #[test]
    fn reconstruct_one_rejects_duplicate_indices_up_front() {
        let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
        let data = sample_data(4, 12);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        // Shard 0 listed twice: without the up-front check this built a
        // singular matrix and surfaced as an inscrutable SingularMatrix.
        let avail: Vec<(usize, &[u8])> = vec![
            (0, data[0].as_slice()),
            (0, data[0].as_slice()),
            (2, data[2].as_slice()),
            (4, parity[0].as_slice()),
        ];
        assert_eq!(
            code.reconstruct_one(3, &avail),
            Err(RsError::DuplicateShardIndex { index: 0 })
        );
        // Duplicates beyond the first m survivors are rejected too — the
        // caller's list is inconsistent even if the chosen prefix is fine.
        let avail: Vec<(usize, &[u8])> = vec![
            (0, data[0].as_slice()),
            (1, data[1].as_slice()),
            (2, data[2].as_slice()),
            (4, parity[0].as_slice()),
            (4, parity[0].as_slice()),
        ];
        assert_eq!(
            code.reconstruct_one(3, &avail),
            Err(RsError::DuplicateShardIndex { index: 4 })
        );
        // An out-of-range index is caught before it can panic in the
        // matrix build.
        let avail: Vec<(usize, &[u8])> = vec![
            (0, data[0].as_slice()),
            (1, data[1].as_slice()),
            (2, data[2].as_slice()),
            (9, parity[0].as_slice()),
        ];
        assert!(matches!(
            code.reconstruct_one(3, &avail),
            Err(RsError::WrongShardCount { .. })
        ));
    }

    #[test]
    fn k_equals_one_is_pure_xor_scheme() {
        // With k = 1 the code degenerates to LH*g: parity is XOR and a lost
        // shard is the XOR of the survivors.
        let code: RsCode<Gf8> = RsCode::new(3, 1).unwrap();
        let data = sample_data(3, 8);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut expect = vec![0u8; 8];
        for d in &data {
            add_slice(d, &mut expect);
        }
        assert_eq!(parity[0], expect);
        let avail: Vec<(usize, &[u8])> = vec![
            (0, data[0].as_slice()),
            (2, data[2].as_slice()),
            (3, parity[0].as_slice()),
        ];
        assert_eq!(code.reconstruct_one(1, &avail).unwrap(), data[1]);
    }

    #[test]
    fn gf16_roundtrip() {
        let code: RsCode<Gf16> = RsCode::new(8, 3).unwrap();
        let data = sample_data(8, 32); // even length for GF(2^16)
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[0] = None;
        shards[5] = None;
        shards[9] = None;
        code.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
        assert_eq!(shards[5].as_deref(), Some(&data[5][..]));
        assert_eq!(shards[9].as_deref(), Some(&parity[1][..]));
    }

    #[test]
    fn gf4_supports_small_groups_only() {
        assert!(RsCode::<Gf4>::new(12, 4).is_ok()); // 16 = 2^4
        assert!(matches!(
            RsCode::<Gf4>::new(14, 3),
            Err(RsError::InvalidParameters { .. })
        ));
        let code: RsCode<Gf4> = RsCode::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[1] = None;
        shards[4] = None;
        code.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
        assert_eq!(shards[4].as_deref(), Some(&parity[0][..]));
    }

    #[test]
    fn generator_columns_are_prefix_stable_in_k() {
        // Raising k must not change the existing parity columns — this is
        // what lets LH*RS scalable availability add parity buckets to a
        // group without touching the existing ones.
        for m in [1usize, 2, 4, 8, 16, 100] {
            let codes: Vec<RsCode<Gf8>> = (1..=4).map(|k| RsCode::new(m, k).unwrap()).collect();
            for (ki, code) in codes.iter().enumerate() {
                for smaller in &codes[..ki] {
                    for i in 0..m {
                        for j in 0..smaller.parity_shards() {
                            assert_eq!(code.coeff(i, j), smaller.coeff(i, j), "m={m} i={i} j={j}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parity_encoded_at_low_k_decodes_under_higher_k() {
        // End-to-end version of prefix stability: parity shards produced by
        // the (m, 1) code remain valid shards of the (m, 3) code.
        let m = 4;
        let low: RsCode<Gf8> = RsCode::new(m, 1).unwrap();
        let high: RsCode<Gf8> = RsCode::new(m, 3).unwrap();
        let data = sample_data(m, 20);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p_low = low.encode(&refs).unwrap();
        let p_high = high.encode(&refs).unwrap();
        assert_eq!(p_low[0], p_high[0]);
        // Decode two data losses using the old parity plus one new column.
        let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
        shards.extend(p_high.iter().cloned().map(Some));
        shards[0] = None;
        shards[2] = None;
        high.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
        assert_eq!(shards[2].as_deref(), Some(&data[2][..]));
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(RsCode::<Gf8>::new(0, 2).is_err());
        assert!(RsCode::<Gf8>::new(4, 0).is_err());
    }

    #[test]
    fn misaligned_gf16_buffers_rejected() {
        let code: RsCode<Gf16> = RsCode::new(2, 1).unwrap();
        let d = vec![1u8; 7]; // odd
        assert_eq!(
            code.encode(&[&d, &d]).unwrap_err(),
            RsError::InconsistentShardLength
        );
    }

    #[test]
    fn ragged_buffers_rejected() {
        let code: RsCode<Gf8> = RsCode::new(2, 1).unwrap();
        let a = vec![1u8; 8];
        let b = vec![1u8; 9];
        assert_eq!(
            code.encode(&[&a, &b]).unwrap_err(),
            RsError::InconsistentShardLength
        );
    }

    /// A group with `k` parities fed `k + 1` erasures must degrade with a
    /// typed error, never panic: the recovery matrix is rank-deficient and
    /// the decode path has to say so.
    #[test]
    fn k_plus_one_erasures_is_a_typed_error_not_a_panic() {
        let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        // k = 2 tolerated; erase k + 1 = 3 shards (two data, one parity).
        shards[0] = None;
        shards[2] = None;
        shards[5] = None;
        match code.reconstruct(&mut shards) {
            Err(RsError::TooManyErasures {
                missing: 3,
                tolerated: 2,
            }) => {}
            other => panic!("expected TooManyErasures, got {other:?}"),
        }
        // The survivors are untouched by the failed attempt.
        assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
        assert_eq!(shards[3].as_deref(), Some(&data[3][..]));
        assert_eq!(shards[4].as_deref(), Some(&parity[0][..]));
    }

    /// Same rule for the record-level degraded read: fewer than `m`
    /// survivors is an error, not an abort.
    #[test]
    fn reconstruct_one_with_too_few_survivors_errors() {
        let code: RsCode<Gf8> = RsCode::new(3, 2).unwrap();
        let d = sample_data(3, 8);
        let avail: Vec<(usize, &[u8])> = vec![(0, &d[0][..]), (1, &d[1][..])];
        assert!(matches!(
            code.reconstruct_one(2, &avail),
            Err(RsError::TooManyErasures { .. })
        ));
    }

    /// A malformed Δ-commit (out-of-range indices or a short buffer) must
    /// degrade instead of aborting the parity actor: bad indices are a
    /// no-op, and a short delta only touches the common prefix.
    #[test]
    fn apply_delta_out_of_range_degrades_instead_of_aborting() {
        let code: RsCode<Gf8> = RsCode::new(3, 2).unwrap();
        let before = [7u8, 8, 9, 10];

        let mut parity = before;
        code.apply_delta(3, 0, &[1, 2, 3, 4], &mut parity);
        assert_eq!(parity, before, "data_index >= m is a no-op");

        let mut parity = before;
        code.apply_delta(0, 2, &[1, 2, 3, 4], &mut parity);
        assert_eq!(parity, before, "parity_index >= k is a no-op");

        // Short delta: parity_index 0 has coefficient 1 (pure XOR), so only
        // the two-byte prefix changes.
        let mut parity = before;
        code.apply_delta(1, 0, &[0xFF, 0xFF], &mut parity);
        assert_eq!(parity, [7 ^ 0xFF, 8 ^ 0xFF, 9, 10]);
    }
}
