//! Dense matrices over a Galois field: the small linear-algebra kernel
//! behind generator construction and erasure decoding.
//!
//! Matrices here are tiny (at most `(m+k) × m` with `m + k ≤ 2^f`), so the
//! implementation favours clarity: row-major `Vec`, Gauss–Jordan inversion.

use lhrs_gf::GaloisField;

use crate::RsError;

/// A dense row-major matrix over the field `F`.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<F: GaloisField> {
    rows: usize,
    cols: usize,
    data: Vec<F::Elem>,
}

impl<F: GaloisField> std::fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix<{}> {}x{}", F::NAME, self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                write!(f, " {:?}", self.get(r, c))?;
            }
            writeln!(f, " ]")?;
        }
        Ok(())
    }
}

impl<F: GaloisField> Matrix<F> {
    /// An all-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::zero(); rows.saturating_mul(cols)],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, F::one());
        }
        m
    }

    /// Build from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F::Elem) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// A Cauchy matrix `C[r][c] = 1 / (x_r + y_c)` with
    /// `x_r = r`, `y_c = rows + c` (all distinct, so every denominator is
    /// nonzero and every square submatrix is nonsingular).
    ///
    /// # Errors
    /// [`RsError::InvalidParameters`] if `rows + cols > 2^f`.
    pub fn cauchy(rows: usize, cols: usize) -> Result<Self, RsError> {
        if rows.saturating_add(cols) > usize::try_from(F::ORDER).unwrap_or(usize::MAX) {
            return Err(RsError::InvalidParameters {
                m: rows,
                k: cols,
                field_order: F::ORDER,
            });
        }
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let x = F::from_usize(r);
                let y = F::from_usize(rows.saturating_add(c));
                // Distinct points imply a nonzero sum; surface the
                // impossible case as an error instead of aborting.
                let v = F::inv(F::add(x, y)).ok_or(RsError::SingularMatrix)?;
                m.set(r, c, v);
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`; out-of-range coordinates degrade to the field
    /// zero (debug builds still trap) so a bookkeeping bug in a caller
    /// corrupts one symbol instead of killing the bucket actor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F::Elem {
        debug_assert!(r < self.rows && c < self.cols);
        self.data
            .get(r.saturating_mul(self.cols).saturating_add(c))
            .copied()
            .unwrap_or_else(F::zero)
    }

    /// Set element at `(r, c)`; out-of-range coordinates are ignored.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F::Elem) {
        debug_assert!(r < self.rows && c < self.cols);
        let idx = r.saturating_mul(self.cols).saturating_add(c);
        if let Some(e) = self.data.get_mut(idx) {
            *e = v;
        }
    }

    /// Row `r` as a slice (empty for an out-of-range row).
    pub fn row(&self, r: usize) -> &[F::Elem] {
        let start = r.saturating_mul(self.cols);
        let end = start.saturating_add(self.cols);
        self.data.get(start..end).unwrap_or(&[])
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    /// [`RsError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Matrix<F>) -> Result<Matrix<F>, RsError> {
        if self.cols != rhs.rows {
            return Err(RsError::DimensionMismatch);
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc = F::zero();
                for t in 0..self.cols {
                    acc = F::add(acc, F::mul(self.get(r, t), rhs.get(t, c)));
                }
                out.set(r, c, acc);
            }
        }
        Ok(out)
    }

    /// Scale row `r` by `v`.
    pub fn scale_row(&mut self, r: usize, v: F::Elem) {
        for c in 0..self.cols {
            let x = self.get(r, c);
            self.set(r, c, F::mul(x, v));
        }
    }

    /// Scale column `c` by `v`.
    pub fn scale_col(&mut self, c: usize, v: F::Elem) {
        for r in 0..self.rows {
            let x = self.get(r, c);
            self.set(r, c, F::mul(x, v));
        }
    }

    /// The submatrix formed by the given rows (in the given order), keeping
    /// all columns.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix<F> {
        Matrix::from_fn(rows.len(), self.cols, |r, c| {
            self.get(rows.get(r).copied().unwrap_or(0), c)
        })
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting (any
    /// nonzero pivot works in a field).
    ///
    /// # Errors
    /// [`RsError::DimensionMismatch`] for non-square input,
    /// [`RsError::SingularMatrix`] if no inverse exists.
    pub fn inverse(&self) -> Result<Matrix<F>, RsError> {
        if self.rows != self.cols {
            return Err(RsError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::<F>::identity(n);
        for col in 0..n {
            // Find a nonzero pivot at or below the diagonal.
            let pivot = (col..n)
                .find(|&r| a.get(r, col) != F::zero())
                .ok_or(RsError::SingularMatrix)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row (the pivot was selected nonzero, so
            // inversion cannot fail; degrade rather than abort regardless).
            let pv = F::inv(a.get(col, col)).ok_or(RsError::SingularMatrix)?;
            a.scale_row(col, pv);
            inv.scale_row(col, pv);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == F::zero() {
                    continue;
                }
                for c in 0..n {
                    let v = F::add(a.get(r, c), F::mul(factor, a.get(col, c)));
                    a.set(r, c, v);
                    let w = F::add(inv.get(r, c), F::mul(factor, inv.get(col, c)));
                    inv.set(r, c, w);
                }
            }
        }
        Ok(inv)
    }

    /// Whether the (square) matrix is invertible.
    pub fn is_nonsingular(&self) -> bool {
        self.rows == self.cols && self.inverse().is_ok()
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let (x, y) = (self.get(a, c), self.get(b, c));
            self.set(a, c, y);
            self.set(b, c, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhrs_gf::{Gf16, Gf8};

    #[test]
    fn identity_is_multiplicative_neutral() {
        let m = Matrix::<Gf8>::from_fn(3, 3, |r, c| (r * 3 + c + 1) as u8);
        let i = Matrix::<Gf8>::identity(3);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn inverse_roundtrip_gf8() {
        let m = Matrix::<Gf8>::cauchy(5, 5).unwrap();
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul(&inv).unwrap(), Matrix::<Gf8>::identity(5));
        assert_eq!(inv.mul(&m).unwrap(), Matrix::<Gf8>::identity(5));
    }

    #[test]
    fn inverse_roundtrip_gf16() {
        let m = Matrix::<Gf16>::cauchy(4, 4).unwrap();
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul(&inv).unwrap(), Matrix::<Gf16>::identity(4));
    }

    #[test]
    fn singular_matrix_detected() {
        // Two identical rows.
        let m = Matrix::<Gf8>::from_fn(2, 2, |_, c| (c + 1) as u8);
        assert_eq!(m.inverse().unwrap_err(), RsError::SingularMatrix);
        assert!(!m.is_nonsingular());
    }

    #[test]
    fn non_square_inverse_rejected() {
        let m = Matrix::<Gf8>::zero(2, 3);
        assert_eq!(m.inverse().unwrap_err(), RsError::DimensionMismatch);
    }

    #[test]
    fn cauchy_all_square_submatrices_nonsingular_small() {
        // Exhaustively check 1x1 and 2x2 submatrices of a 4x4 Cauchy over
        // GF(2^8) — the MDS-defining property.
        let m = Matrix::<Gf8>::cauchy(4, 4).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert_ne!(m.get(r, c), 0);
            }
        }
        for r1 in 0..4 {
            for r2 in r1 + 1..4 {
                for c1 in 0..4 {
                    for c2 in c1 + 1..4 {
                        let det = Gf8::add(
                            Gf8::mul(m.get(r1, c1), m.get(r2, c2)),
                            Gf8::mul(m.get(r1, c2), m.get(r2, c1)),
                        );
                        assert_ne!(det, 0, "singular 2x2 at ({r1},{r2})x({c1},{c2})");
                    }
                }
            }
        }
    }

    #[test]
    fn cauchy_too_large_for_field_rejected() {
        assert!(matches!(
            Matrix::<Gf8>::cauchy(200, 100),
            Err(RsError::InvalidParameters { .. })
        ));
        use lhrs_gf::Gf4;
        assert!(matches!(
            Matrix::<Gf4>::cauchy(10, 10),
            Err(RsError::InvalidParameters { .. })
        ));
        assert!(Matrix::<Gf4>::cauchy(10, 6).is_ok());
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::<Gf8>::from_fn(3, 2, |r, c| (10 * r + c) as u8);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[20, 21]);
        assert_eq!(s.row(1), &[0, 1]);
    }

    #[test]
    fn mul_dimension_mismatch_rejected() {
        let a = Matrix::<Gf8>::zero(2, 3);
        let b = Matrix::<Gf8>::zero(2, 3);
        assert_eq!(a.mul(&b).unwrap_err(), RsError::DimensionMismatch);
    }
}
