//! The discrete-event engine: event queue, node table, crash/restart, and
//! the deterministic run loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use lhrs_obs::{Event as ObsEvent, Metrics};

use crate::actor::{Actor, Effect, Env, TimerId};
use crate::faults::FaultOutcome;
use crate::{FaultPlan, LatencyModel, NetStats, Payload};

/// Identifier of a simulated node. Dense indices assigned by
/// [`Sim::add_node`] in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Pseudo-sender for messages injected from outside the simulation (the
/// test harness / application driver).
pub const EXTERNAL: NodeId = NodeId(u32::MAX);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == EXTERNAL {
            write!(f, "ext")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { id: TimerId },
}

#[derive(Debug)]
struct Event<M> {
    time: u64,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The deterministic discrete-event simulator.
///
/// Generic over the message payload `M` and the actor type `A` (typically an
/// enum over the node roles of the scheme under test).
pub struct Sim<M: Payload, A: Actor<M>> {
    actors: Vec<Option<A>>,
    crashed: Vec<bool>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    now: u64,
    seq: u64,
    next_timer: u64,
    cancelled_timers: HashSet<u64>,
    /// Timer ids with an event still in the queue. Cancelling an id not in
    /// this set is a no-op, so `cancelled_timers` can never grow a
    /// permanent entry (the old behaviour leaked one per stale cancel
    /// across long soak runs).
    armed_timers: HashSet<u64>,
    latency: LatencyModel,
    faults: Option<FaultPlan>,
    stats: NetStats,
    /// Last scheduled arrival per (src, dst): deliveries between a node
    /// pair are FIFO, like the TCP connections of the paper's testbed.
    channel_clock: std::collections::HashMap<(NodeId, NodeId), u64>,
    /// Per-node "busy until" clock for the serial service-time model.
    node_free_at: Vec<u64>,
    /// Observability handle shared with every [`Env`] this engine builds.
    /// Disabled by default; install one via [`Sim::set_metrics`].
    metrics: Metrics,
}

impl<M: Payload, A: Actor<M>> Sim<M, A> {
    /// Create an empty simulation with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        Sim {
            actors: Vec::new(),
            crashed: Vec::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            next_timer: 0,
            cancelled_timers: HashSet::new(),
            armed_timers: HashSet::new(),
            latency,
            faults: None,
            stats: NetStats::default(),
            channel_clock: std::collections::HashMap::new(),
            node_free_at: Vec::new(),
            metrics: Metrics::disabled(),
        }
    }

    /// Install an observability handle. Every subsequent handler invocation
    /// sees it through [`Env::obs`], `msgs_sent`/`msgs_recv` counters run
    /// at the engine's send/deliver choke points, and the caller keeps a
    /// shared clone to read counters and traces from.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The installed observability handle (disabled unless
    /// [`Sim::set_metrics`] was called).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Add a node running `actor`; returns its id (dense, in creation
    /// order).
    pub fn add_node(&mut self, actor: A) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.crashed.push(false);
        self.node_free_at.push(0);
        id
    }

    /// Number of nodes ever added (crashed ones included).
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Inject a message from the external driver into the simulation.
    ///
    /// Driver injections model the application handing work to its local
    /// client, not network traffic, so they are **not** tallied in
    /// [`NetStats`] (the SDDS cost model counts messages between nodes
    /// only).
    pub fn send_external(&mut self, to: NodeId, msg: M) {
        self.enqueue_delivery(EXTERNAL, to, msg);
    }

    /// Inject a message with an arbitrary (spoofed) sender — used by test
    /// harnesses that play the role of a specific node.
    pub fn send_as(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.enqueue_send(from, to, msg);
    }

    /// Validate a node id and return its dense index. `EXTERNAL` and ids
    /// beyond the node table panic with a message naming the operation —
    /// the raw `node.0 as usize` indexing this replaces produced either an
    /// opaque out-of-bounds panic or (for `EXTERNAL` on a 4-billion-entry
    /// table) a capacity blowup.
    #[track_caller]
    fn checked_index(&self, node: NodeId, op: &str) -> usize {
        assert!(
            node != EXTERNAL,
            "Sim::{op}: EXTERNAL is the driver pseudo-node, not a simulated node"
        );
        let idx = node.0 as usize;
        assert!(
            idx < self.actors.len(),
            "Sim::{op}: unknown node {node} (only {} nodes exist)",
            self.actors.len()
        );
        idx
    }

    /// Crash a node: its pending and future deliveries and timers are
    /// silently dropped (and counted in [`NetStats::dropped`]) until
    /// [`Sim::restart`]. Actor state is retained, modelling a transient
    /// outage; use [`Sim::replace`] to model state loss onto a hot spare.
    pub fn crash(&mut self, node: NodeId) {
        let idx = self.checked_index(node, "crash");
        self.crashed[idx] = true;
    }

    /// Bring a crashed node back with its state intact (the paper's
    /// "restarted with correct data" self-detection case).
    pub fn restart(&mut self, node: NodeId) {
        let idx = self.checked_index(node, "restart");
        self.crashed[idx] = false;
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[self.checked_index(node, "is_crashed")]
    }

    /// Replace the actor on `node` (e.g. re-provisioning a hot spare) and
    /// un-crash it.
    pub fn replace(&mut self, node: NodeId, actor: A) {
        let idx = self.checked_index(node, "replace");
        self.actors[idx] = Some(actor);
        self.crashed[idx] = false;
    }

    /// Immutable access to a node's actor (panics on unknown node).
    pub fn actor(&self, node: NodeId) -> &A {
        let idx = self.checked_index(node, "actor");
        self.actors[idx].as_ref().expect("actor present")
    }

    /// Mutable access to a node's actor (panics on unknown node).
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        let idx = self.checked_index(node, "actor_mut");
        self.actors[idx].as_mut().expect("actor present")
    }

    /// Install a deterministic network [`FaultPlan`]; replaces any existing
    /// plan. Faults apply to node-to-node traffic only — external driver
    /// injections model the app→local-client handoff and stay reliable.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Remove the fault plan, returning the network to perfect reliability.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Current simulated time in microseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Message statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time must be monotone");
        self.now = ev.time;
        let idx = ev.node.0 as usize;
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                if self.crashed[idx] {
                    self.stats.record_drop();
                    return true;
                }
                // Serial service: a message reaching a busy node waits for
                // the node to free up. The event keeps its ORIGINAL
                // sequence number — a fresh one would let a later
                // same-channel message arriving exactly at `node_free_at`
                // overtake it (same event time, smaller seq), breaking the
                // per-channel FIFO guarantee.
                if self.latency.service_us > 0 && self.node_free_at[idx] > ev.time {
                    self.queue.push(Reverse(Event {
                        time: self.node_free_at[idx],
                        seq: ev.seq,
                        node: ev.node,
                        kind: EventKind::Deliver { from, msg },
                    }));
                    return true;
                }
                self.node_free_at[idx] = ev.time + self.latency.service_us;
                self.metrics.incr_kind("msgs_recv", msg.kind());
                if self.metrics.msg_trace() {
                    self.metrics.trace(
                        self.now,
                        ObsEvent::MsgRecv {
                            kind: msg.kind(),
                            from: from.0,
                            to: ev.node.0,
                        },
                    );
                }
                self.dispatch(ev.node, |actor, env| actor.on_message(env, from, msg));
            }
            EventKind::Timer { id } => {
                // The event is consumed whatever happens next, so both
                // tracking sets drain here — including entries for timers
                // whose owner crashed, which previously could linger in
                // `cancelled_timers` forever.
                self.armed_timers.remove(&id.0);
                if self.cancelled_timers.remove(&id.0) {
                    return true;
                }
                if self.crashed[idx] {
                    return true;
                }
                self.dispatch(ev.node, |actor, env| actor.on_timer(env, id));
            }
        }
        true
    }

    /// Run until no events remain. Returns the number of events processed.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Run until simulated time would exceed `t_us` (events at exactly
    /// `t_us` are processed). Returns the number of events processed.
    pub fn run_until(&mut self, t_us: u64) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.time > t_us {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(t_us);
        n
    }

    /// Take the actor out, run the handler with a fresh [`Env`], put it
    /// back, then apply the buffered effects. The take/put dance is what
    /// lets handlers send messages without aliasing the engine.
    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Env<'_, M>)) {
        let idx = node.0 as usize;
        let mut actor = self.actors[idx].take().expect("actor present");
        let mut effects = Vec::new();
        {
            let mut env = Env {
                me: node,
                now: self.now,
                next_timer: &mut self.next_timer,
                effects: &mut effects,
                obs: &self.metrics,
            };
            f(&mut actor, &mut env);
        }
        self.actors[idx] = Some(actor);
        for eff in effects {
            match eff {
                Effect::Send { to, msg } => self.enqueue_send(node, to, msg),
                Effect::Multicast { to, msg } => {
                    self.stats
                        .record_multicast(msg.kind(), msg.size_bytes(), to.len());
                    for dest in to {
                        self.enqueue_delivery(node, dest, msg.clone());
                    }
                }
                Effect::SetTimer { id, delay } => {
                    let seq = self.next_seq();
                    self.armed_timers.insert(id.0);
                    self.queue.push(Reverse(Event {
                        time: self.now + delay,
                        seq,
                        node,
                        kind: EventKind::Timer { id },
                    }));
                }
                Effect::CancelTimer { id } => {
                    // Only a timer whose event is still queued needs a
                    // tombstone; cancelling an already-fired (or never
                    // armed) id must not leak a permanent entry.
                    if self.armed_timers.contains(&id.0) {
                        self.cancelled_timers.insert(id.0);
                    }
                }
            }
        }
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.stats.record_unicast(msg.kind(), msg.size_bytes());
        self.enqueue_delivery(from, to, msg);
    }

    fn enqueue_delivery(&mut self, from: NodeId, to: NodeId, msg: M) {
        // Fault injection applies to node-to-node traffic only; driver
        // injections model the app handing work to its local client.
        if from != EXTERNAL {
            if let Some(plan) = &self.faults {
                match plan.decide(self.seq, self.now, from, to) {
                    FaultOutcome::Dropped => {
                        self.next_seq(); // keep the decision stream advancing
                        self.stats.record_fault_drop();
                        return;
                    }
                    FaultOutcome::Partitioned => {
                        self.next_seq();
                        self.stats.record_partition_drop();
                        return;
                    }
                    FaultOutcome::Deliver {
                        copies,
                        reorder_extra_us,
                    } => {
                        if copies > 1 {
                            self.stats.record_duplicate();
                        }
                        if reorder_extra_us.is_some() {
                            self.stats.record_reorder();
                        }
                        for _ in 0..copies {
                            self.enqueue_copy(from, to, msg.clone(), reorder_extra_us);
                        }
                        return;
                    }
                }
            }
        }
        self.enqueue_copy(from, to, msg, None);
    }

    /// Schedule one physical delivery. `reorder_extra_us = Some(x)` delays
    /// the message by `x` extra microseconds and **bypasses the per-channel
    /// FIFO clamp**, so later sends on the same channel can overtake it —
    /// that is what makes it a reordering rather than a slowdown.
    fn enqueue_copy(&mut self, from: NodeId, to: NodeId, msg: M, reorder_extra_us: Option<u64>) {
        let seq = self.next_seq();
        let delay = self.latency.delay_us(msg.size_bytes(), seq);
        let time = match reorder_extra_us {
            None => {
                // FIFO per channel: never schedule an arrival before an
                // earlier send on the same (src, dst) pair.
                let clock = self.channel_clock.entry((from, to)).or_insert(0);
                let time = (self.now + delay).max(*clock);
                *clock = time;
                time
            }
            Some(extra) => self.now + delay + extra,
        };
        self.queue.push(Reverse(Event {
            time,
            seq,
            node: to,
            kind: EventKind::Deliver { from, msg },
        }));
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Hello(u32),
        Fanout,
    }
    impl Payload for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Hello(_) => "hello",
                Msg::Fanout => "fanout",
            }
        }
        fn size_bytes(&self) -> usize {
            4
        }
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(NodeId, Msg)>,
        timer_fired: Vec<TimerId>,
        relay_to: Vec<NodeId>,
    }

    impl Actor<Msg> for Recorder {
        fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
            self.seen.push((from, msg.clone()));
            if msg == Msg::Fanout {
                let to = self.relay_to.clone();
                env.multicast(to, Msg::Hello(99));
            }
        }
        fn on_timer(&mut self, _env: &mut Env<'_, Msg>, timer: TimerId) {
            self.timer_fired.push(timer);
        }
    }

    #[test]
    fn external_message_is_delivered() {
        let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::instant());
        let a = sim.add_node(Recorder::default());
        sim.send_external(a, Msg::Hello(1));
        sim.run_until_idle();
        assert_eq!(sim.actor(a).seen, vec![(EXTERNAL, Msg::Hello(1))]);
        // Driver injections are not network traffic and are not tallied.
        assert_eq!(sim.stats().count("hello"), 0);
        assert_eq!(sim.stats().total_bytes(), 0);
        // A node-to-node send is tallied.
        sim.send_as(a, a, Msg::Hello(2));
        sim.run_until_idle();
        assert_eq!(sim.stats().count("hello"), 1);
        assert_eq!(sim.stats().total_bytes(), 4);
    }

    #[test]
    fn crashed_node_drops_messages_then_restart_delivers_again() {
        let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::instant());
        let a = sim.add_node(Recorder::default());
        sim.crash(a);
        sim.send_external(a, Msg::Hello(1));
        sim.run_until_idle();
        assert!(sim.actor(a).seen.is_empty());
        assert_eq!(sim.stats().dropped, 1);
        sim.restart(a);
        sim.send_external(a, Msg::Hello(2));
        sim.run_until_idle();
        assert_eq!(sim.actor(a).seen, vec![(EXTERNAL, Msg::Hello(2))]);
    }

    #[test]
    fn multicast_reaches_all_and_counts_once() {
        let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::instant());
        let hub = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        let c = sim.add_node(Recorder::default());
        sim.actor_mut(hub).relay_to = vec![b, c];
        sim.send_external(hub, Msg::Fanout);
        sim.run_until_idle();
        assert_eq!(sim.actor(b).seen.len(), 1);
        assert_eq!(sim.actor(c).seen.len(), 1);
        assert_eq!(sim.stats().multicasts, 1);
        assert_eq!(sim.stats().multicast_deliveries, 2);
        assert_eq!(sim.stats().count("hello"), 2);
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        fn run() -> Vec<(NodeId, Msg)> {
            let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::default());
            let a = sim.add_node(Recorder::default());
            for i in 0..50 {
                sim.send_external(a, Msg::Hello(i));
            }
            sim.run_until_idle();
            sim.actor(a).seen.clone()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_orders_deliveries_by_time() {
        // With a fixed latency, two messages sent at t=0 arrive in send
        // order; a later external send arrives after.
        let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::fixed(100));
        let a = sim.add_node(Recorder::default());
        sim.send_external(a, Msg::Hello(1));
        sim.send_external(a, Msg::Hello(2));
        sim.run_until_idle();
        let vals: Vec<u32> = sim
            .actor(a)
            .seen
            .iter()
            .map(|(_, m)| match m {
                Msg::Hello(x) => *x,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 2]);
        assert_eq!(sim.now(), 100);
    }

    #[derive(Default)]
    struct TimerNode {
        fired: Vec<(u64, TimerId)>,
        arm: Vec<u64>,
        cancel_first: bool,
    }
    impl Actor<Msg> for TimerNode {
        fn on_message(&mut self, env: &mut Env<'_, Msg>, _from: NodeId, _msg: Msg) {
            let mut ids = Vec::new();
            for &d in &self.arm {
                ids.push(env.set_timer(d));
            }
            if self.cancel_first {
                env.cancel_timer(ids[0]);
            }
        }
        fn on_timer(&mut self, env: &mut Env<'_, Msg>, timer: TimerId) {
            self.fired.push((env.now(), timer));
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancellation_works() {
        let mut sim: Sim<Msg, TimerNode> = Sim::new(LatencyModel::instant());
        let a = sim.add_node(TimerNode {
            arm: vec![300, 100, 200],
            cancel_first: true,
            ..Default::default()
        });
        sim.send_external(a, Msg::Hello(0));
        sim.run_until_idle();
        let times: Vec<u64> = sim.actor(a).fired.iter().map(|(t, _)| *t).collect();
        // The 300 µs timer was cancelled; 100 then 200 fire.
        assert_eq!(times, vec![100, 200]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim: Sim<Msg, TimerNode> = Sim::new(LatencyModel::instant());
        let a = sim.add_node(TimerNode {
            arm: vec![100, 900],
            ..Default::default()
        });
        sim.send_external(a, Msg::Hello(0));
        sim.run_until(500);
        assert_eq!(sim.actor(a).fired.len(), 1);
        assert_eq!(sim.now(), 500);
        sim.run_until_idle();
        assert_eq!(sim.actor(a).fired.len(), 2);
    }

    #[test]
    fn serial_service_time_queues_concurrent_deliveries() {
        // Ten messages arrive at once; with 100 µs service the node
        // finishes the batch at t = 1000 µs, not 100.
        let model = LatencyModel {
            base_us: 0,
            per_byte_ns: 0,
            jitter_us: 0,
            service_us: 100,
        };
        let mut sim: Sim<Msg, Recorder> = Sim::new(model);
        let a = sim.add_node(Recorder::default());
        for i in 0..10 {
            sim.send_external(a, Msg::Hello(i));
        }
        sim.run_until_idle();
        assert_eq!(sim.actor(a).seen.len(), 10);
        assert_eq!(sim.now(), 900, "10th message starts service at 900 µs");
        // Arrival order preserved despite re-queuing.
        let vals: Vec<u32> = sim
            .actor(a)
            .seen
            .iter()
            .map(|(_, m)| match m {
                Msg::Hello(x) => *x,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "EXTERNAL is the driver pseudo-node")]
    fn crash_external_panics_with_clear_message() {
        let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::instant());
        sim.add_node(Recorder::default());
        sim.crash(EXTERNAL);
    }

    #[test]
    #[should_panic(expected = "unknown node n7 (only 1 nodes exist)")]
    fn crash_out_of_range_panics_with_clear_message() {
        let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::instant());
        sim.add_node(Recorder::default());
        sim.crash(NodeId(7));
    }

    #[test]
    #[should_panic(expected = "Sim::is_crashed")]
    fn is_crashed_validates_too() {
        let sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::instant());
        sim.is_crashed(NodeId(0));
    }

    /// An actor that arms one timer on the first message and cancels that
    /// (by then long-fired) id on the second — the stale-cancel pattern
    /// that used to leak a permanent `cancelled_timers` entry.
    #[derive(Default)]
    struct StaleCanceller {
        armed: Option<TimerId>,
        fired: usize,
    }
    impl Actor<Msg> for StaleCanceller {
        fn on_message(&mut self, env: &mut Env<'_, Msg>, _from: NodeId, _msg: Msg) {
            match self.armed {
                None => self.armed = Some(env.set_timer(50)),
                Some(id) => env.cancel_timer(id),
            }
        }
        fn on_timer(&mut self, _env: &mut Env<'_, Msg>, _timer: TimerId) {
            self.fired += 1;
        }
    }

    #[test]
    fn stale_cancel_does_not_leak_tombstones() {
        let mut sim: Sim<Msg, StaleCanceller> = Sim::new(LatencyModel::instant());
        let a = sim.add_node(StaleCanceller::default());
        for _ in 0..100 {
            sim.send_external(a, Msg::Hello(0)); // arm
            sim.run_until_idle(); // timer fires
            sim.send_external(a, Msg::Hello(1)); // cancel the fired id
            sim.run_until_idle();
            sim.actor_mut(a).armed = None;
        }
        assert_eq!(sim.actor(a).fired, 100);
        assert!(
            sim.cancelled_timers.is_empty(),
            "stale cancels must not accumulate: {} entries",
            sim.cancelled_timers.len()
        );
        assert!(sim.armed_timers.is_empty());
    }

    #[test]
    fn crash_dropped_timer_drains_tracking_sets() {
        let mut sim: Sim<Msg, TimerNode> = Sim::new(LatencyModel::instant());
        let a = sim.add_node(TimerNode {
            arm: vec![100, 200],
            cancel_first: true, // tombstone for the 100 µs timer
            ..Default::default()
        });
        sim.send_external(a, Msg::Hello(0));
        sim.run_until(50);
        sim.crash(a); // both timer events now pop against a crashed node
        sim.run_until_idle();
        assert!(sim.actor(a).fired.is_empty());
        assert!(
            sim.cancelled_timers.is_empty(),
            "crash-dropped timers must drain their tombstones"
        );
        assert!(sim.armed_timers.is_empty());
    }

    #[test]
    fn replace_installs_fresh_state() {
        let mut sim: Sim<Msg, Recorder> = Sim::new(LatencyModel::instant());
        let a = sim.add_node(Recorder::default());
        sim.send_external(a, Msg::Hello(7));
        sim.run_until_idle();
        assert_eq!(sim.actor(a).seen.len(), 1);
        sim.crash(a);
        sim.replace(a, Recorder::default());
        assert!(!sim.is_crashed(a));
        assert!(sim.actor(a).seen.is_empty());
    }
}
