//! Deterministic network fault injection: message loss, duplication,
//! reordering, and timed partitions.
//!
//! LH\*RS's availability claims are about surviving *failures*; a perfectly
//! reliable network never exercises the client's timeout/escalation paths or
//! the coordinator's retransmission logic. A [`FaultPlan`] makes the
//! simulated network adversarial while keeping the run **bit-for-bit
//! reproducible**: every fault decision is a pure function of the plan's
//! seed and the engine's event sequence number, exactly like latency jitter.
//!
//! Semantics:
//!
//! - **Drop**: the message is never enqueued (tallied in
//!   [`NetStats::fault_dropped`](crate::NetStats::fault_dropped)).
//! - **Duplicate**: the message is enqueued twice; each copy gets its own
//!   delay draw (tallied in `duplicated`).
//! - **Reorder**: the message skips the per-channel FIFO clamp and is given
//!   extra delay, so later sends on the same channel can overtake it
//!   (tallied in `reordered`).
//! - **Partition**: during `[from_us, until_us)`, messages crossing the
//!   boundary between the partitioned set and the rest are dropped
//!   (tallied in `partition_dropped`).
//!
//! Messages injected by the external driver ([`Sim::send_external`]
//! (crate::Sim::send_external)) model the application handing work to its
//! local client — not network traffic — and are exempt.

use crate::engine::NodeId;

/// Rates are expressed in permille (0..=1000) so plans stay integer-only
/// and hashable into the deterministic decision stream.
pub const PERMILLE: u64 = 1000;

/// A time-windowed network partition: `nodes` are unreachable from (and
/// cannot reach) every node outside the set while `from_us <= now < until_us`.
#[derive(Debug, Clone)]
pub struct Partition {
    nodes: Vec<NodeId>,
    from_us: u64,
    until_us: u64,
}

impl Partition {
    /// Isolate `nodes` from the rest of the network during
    /// `[from_us, until_us)`.
    pub fn new(nodes: Vec<NodeId>, from_us: u64, until_us: u64) -> Self {
        assert!(from_us < until_us, "empty partition window");
        Partition {
            nodes,
            from_us,
            until_us,
        }
    }

    /// Whether a message `from → to` sent at `now` crosses this partition's
    /// boundary while it is active.
    fn severs(&self, now: u64, from: NodeId, to: NodeId) -> bool {
        if now < self.from_us || now >= self.until_us {
            return false;
        }
        let a = self.nodes.contains(&from);
        let b = self.nodes.contains(&to);
        a != b
    }
}

/// What the fault layer decided for one message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultOutcome {
    /// Deliver normally (possibly as `copies > 1` duplicates); a reordered
    /// message carries extra delay and skips the FIFO clamp.
    Deliver {
        /// 1 normally, 2 when duplicated.
        copies: u32,
        /// `Some(extra_us)` when the message is reordered.
        reorder_extra_us: Option<u64>,
    },
    /// Silently dropped by random loss.
    Dropped,
    /// Dropped because an active partition severs the channel.
    Partitioned,
}

/// A seeded, deterministic fault-injection plan.
///
/// Build one with the fluent setters and install it via
/// [`Sim::set_fault_plan`](crate::Sim::set_fault_plan):
///
/// ```
/// use lhrs_sim::{FaultPlan, NodeId, Partition};
///
/// let plan = FaultPlan::new(42)
///     .drop_permille(10)      // 1% loss
///     .dup_permille(10)       // 1% duplication
///     .reorder_permille(20)   // 2% reordered
///     .reorder_window_us(400) // reordered messages arrive ≤ 400 µs late
///     .partition(Partition::new(vec![NodeId(3)], 10_000, 20_000));
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    drop_permille: u64,
    dup_permille: u64,
    reorder_permille: u64,
    reorder_window_us: u64,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A fault-free plan with the given decision seed; compose rates with
    /// the fluent setters.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            reorder_permille: 0,
            reorder_window_us: 500,
            partitions: Vec::new(),
        }
    }

    /// The decision seed (two sims sharing a seed and workload draw
    /// identical faults).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each node-to-node message with probability `p`/1000.
    pub fn drop_permille(mut self, p: u64) -> Self {
        assert!(p <= PERMILLE, "drop rate {p}‰ > 1000‰");
        self.drop_permille = p;
        self
    }

    /// Duplicate each delivered message with probability `p`/1000.
    pub fn dup_permille(mut self, p: u64) -> Self {
        assert!(p <= PERMILLE, "dup rate {p}‰ > 1000‰");
        self.dup_permille = p;
        self
    }

    /// Reorder each delivered message with probability `p`/1000: it skips
    /// the per-channel FIFO clamp and is delayed by up to
    /// [`reorder_window_us`](Self::reorder_window_us) extra microseconds.
    pub fn reorder_permille(mut self, p: u64) -> Self {
        assert!(p <= PERMILLE, "reorder rate {p}‰ > 1000‰");
        self.reorder_permille = p;
        self
    }

    /// Maximum extra delay (µs) applied to reordered messages.
    pub fn reorder_window_us(mut self, us: u64) -> Self {
        self.reorder_window_us = us;
        self
    }

    /// Add a timed partition window.
    pub fn partition(mut self, p: Partition) -> Self {
        self.partitions.push(p);
        self
    }

    /// An independent deterministic draw for decision `salt` on event `seq`.
    fn draw(&self, seq: u64, salt: u64) -> u64 {
        splitmix64(
            self.seed ^ splitmix64(seq.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(salt)),
        )
    }

    /// Decide the fate of a message about to be enqueued as event `seq`.
    pub(crate) fn decide(&self, seq: u64, now: u64, from: NodeId, to: NodeId) -> FaultOutcome {
        if self.partitions.iter().any(|p| p.severs(now, from, to)) {
            return FaultOutcome::Partitioned;
        }
        if self.drop_permille > 0 && self.draw(seq, 1) % PERMILLE < self.drop_permille {
            return FaultOutcome::Dropped;
        }
        let copies = if self.dup_permille > 0 && self.draw(seq, 2) % PERMILLE < self.dup_permille {
            2
        } else {
            1
        };
        let reorder_extra_us =
            if self.reorder_permille > 0 && self.draw(seq, 3) % PERMILLE < self.reorder_permille {
                Some(self.draw(seq, 4) % (self.reorder_window_us + 1))
            } else {
                None
            };
        FaultOutcome::Deliver {
            copies,
            reorder_extra_us,
        }
    }
}

/// SplitMix64 (same mixer as the latency jitter): decisions and jitter come
/// from the same deterministic family.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(7)
            .drop_permille(100)
            .dup_permille(100)
            .reorder_permille(100);
        for seq in 0..2000 {
            let a = plan.decide(seq, 0, NodeId(1), NodeId(2));
            let b = plan.decide(seq, 0, NodeId(1), NodeId(2));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::new(99).drop_permille(100); // 10%
        let drops = (0..10_000)
            .filter(|&seq| plan.decide(seq, 0, NodeId(0), NodeId(1)) == FaultOutcome::Dropped)
            .count();
        assert!((700..1300).contains(&drops), "10% of 10k ≈ {drops}");
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let plan = FaultPlan::new(1);
        for seq in 0..1000 {
            assert_eq!(
                plan.decide(seq, 0, NodeId(0), NodeId(1)),
                FaultOutcome::Deliver {
                    copies: 1,
                    reorder_extra_us: None
                }
            );
        }
    }

    #[test]
    fn partition_severs_boundary_but_not_interior() {
        let plan =
            FaultPlan::new(0).partition(Partition::new(vec![NodeId(1), NodeId(2)], 100, 200));
        // Crossing the boundary inside the window: severed both ways.
        assert_eq!(
            plan.decide(0, 150, NodeId(1), NodeId(5)),
            FaultOutcome::Partitioned
        );
        assert_eq!(
            plan.decide(0, 150, NodeId(5), NodeId(2)),
            FaultOutcome::Partitioned
        );
        // Inside the partitioned set: unaffected.
        assert!(matches!(
            plan.decide(0, 150, NodeId(1), NodeId(2)),
            FaultOutcome::Deliver { .. }
        ));
        // Outside the set entirely: unaffected.
        assert!(matches!(
            plan.decide(0, 150, NodeId(5), NodeId(6)),
            FaultOutcome::Deliver { .. }
        ));
        // Outside the window: unaffected.
        assert!(matches!(
            plan.decide(0, 99, NodeId(1), NodeId(5)),
            FaultOutcome::Deliver { .. }
        ));
        assert!(matches!(
            plan.decide(0, 200, NodeId(1), NodeId(5)),
            FaultOutcome::Deliver { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "empty partition window")]
    fn empty_partition_window_rejected() {
        let _ = Partition::new(vec![NodeId(0)], 100, 100);
    }

    #[test]
    #[should_panic(expected = "> 1000")]
    fn over_unit_rate_rejected() {
        let _ = FaultPlan::new(0).drop_permille(1001);
    }
}
