//! Network accounting: the measurement instrument behind every table in the
//! evaluation.

use std::collections::BTreeMap;

/// Tally for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Messages sent of this kind.
    pub count: u64,
    /// Total payload bytes of this kind.
    pub bytes: u64,
}

/// Aggregate message statistics of a simulation run.
///
/// Every unicast send increments `unicast` and its kind tally; a multicast
/// increments `multicasts` once and `multicast_deliveries` per recipient
/// (the kind tally also counts one entry per recipient, since the LH\*
/// papers cost scan *replies* individually but the scan request once).
/// Messages addressed to crashed nodes are still tallied at send time and
/// additionally counted in `dropped` when delivery fails.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Unicast messages sent.
    pub unicast: u64,
    /// Multicast operations performed.
    pub multicasts: u64,
    /// Individual deliveries fanned out by multicasts.
    pub multicast_deliveries: u64,
    /// Deliveries dropped because the destination was crashed.
    pub dropped: u64,
    /// Messages lost to injected random loss (see
    /// [`FaultPlan`](crate::FaultPlan)).
    pub fault_dropped: u64,
    /// Messages lost to an active timed partition.
    pub partition_dropped: u64,
    /// Messages duplicated by fault injection (each counts one extra
    /// physical delivery).
    pub duplicated: u64,
    /// Messages reordered by fault injection (scheduled outside the
    /// per-channel FIFO).
    pub reordered: u64,
    /// Per-kind tallies (BTreeMap so reports are deterministically ordered).
    pub by_kind: BTreeMap<&'static str, KindStats>,
}

impl NetStats {
    /// Record a unicast send of `bytes` payload labelled `kind`.
    pub(crate) fn record_unicast(&mut self, kind: &'static str, bytes: usize) {
        self.unicast += 1;
        let e = self.by_kind.entry(kind).or_default();
        e.count += 1;
        e.bytes += bytes as u64;
    }

    /// Record one multicast to `recipients` nodes.
    pub(crate) fn record_multicast(&mut self, kind: &'static str, bytes: usize, recipients: usize) {
        self.multicasts += 1;
        self.multicast_deliveries += recipients as u64;
        let e = self.by_kind.entry(kind).or_default();
        e.count += recipients as u64;
        e.bytes += (bytes * recipients) as u64;
    }

    pub(crate) fn record_drop(&mut self) {
        self.dropped += 1;
    }

    pub(crate) fn record_fault_drop(&mut self) {
        self.fault_dropped += 1;
    }

    pub(crate) fn record_partition_drop(&mut self) {
        self.partition_dropped += 1;
    }

    pub(crate) fn record_duplicate(&mut self) {
        self.duplicated += 1;
    }

    pub(crate) fn record_reorder(&mut self) {
        self.reordered += 1;
    }

    /// Total messages lost to injected faults (random loss + partitions).
    pub fn total_fault_losses(&self) -> u64 {
        self.fault_dropped + self.partition_dropped
    }

    /// Count of messages of the given kind (0 if never seen).
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).map(|k| k.count).unwrap_or(0)
    }

    /// Payload bytes of the given kind (0 if never seen).
    pub fn bytes(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).map(|k| k.bytes).unwrap_or(0)
    }

    /// Total messages: unicasts plus per-recipient multicast deliveries —
    /// the "number of messages" metric of the SDDS papers.
    pub fn total_messages(&self) -> u64 {
        self.unicast + self.multicast_deliveries
    }

    /// Total payload bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.by_kind.values().map(|k| k.bytes).sum()
    }

    /// Difference `self - earlier`, kind by kind. Used to cost a single
    /// operation: snapshot, run the operation, diff.
    ///
    /// ```
    /// # use lhrs_sim::NetStats;
    /// let stats = NetStats::default();
    /// let snapshot = stats.clone();
    /// // ... run an operation on the simulation owning `stats` ...
    /// let op_cost = stats.since(&snapshot);
    /// assert_eq!(op_cost.total_messages(), 0);
    /// ```
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        let mut by_kind = BTreeMap::new();
        for (k, v) in &self.by_kind {
            let before = earlier.by_kind.get(k).copied().unwrap_or_default();
            by_kind.insert(
                *k,
                KindStats {
                    count: v.count - before.count,
                    bytes: v.bytes - before.bytes,
                },
            );
        }
        NetStats {
            unicast: self.unicast - earlier.unicast,
            multicasts: self.multicasts - earlier.multicasts,
            multicast_deliveries: self.multicast_deliveries - earlier.multicast_deliveries,
            dropped: self.dropped - earlier.dropped,
            fault_dropped: self.fault_dropped - earlier.fault_dropped,
            partition_dropped: self.partition_dropped - earlier.partition_dropped,
            duplicated: self.duplicated - earlier.duplicated,
            reordered: self.reordered - earlier.reordered,
            by_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_by_kind() {
        let mut s = NetStats::default();
        s.record_unicast("a", 10);
        s.record_unicast("a", 5);
        s.record_unicast("b", 1);
        s.record_multicast("scan", 4, 3);
        assert_eq!(s.count("a"), 2);
        assert_eq!(s.bytes("a"), 15);
        assert_eq!(s.count("scan"), 3);
        assert_eq!(s.bytes("scan"), 12);
        assert_eq!(s.total_messages(), 3 + 3);
        assert_eq!(s.total_bytes(), 15 + 1 + 12);
    }

    #[test]
    fn since_diffs_per_kind() {
        let mut s = NetStats::default();
        s.record_unicast("a", 10);
        let snap = s.clone();
        s.record_unicast("a", 10);
        s.record_unicast("c", 2);
        let d = s.since(&snap);
        assert_eq!(d.count("a"), 1);
        assert_eq!(d.count("c"), 1);
        assert_eq!(d.unicast, 2);
    }

    #[test]
    fn missing_kind_reads_zero() {
        let s = NetStats::default();
        assert_eq!(s.count("nope"), 0);
        assert_eq!(s.bytes("nope"), 0);
    }
}
