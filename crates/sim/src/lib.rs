//! Deterministic discrete-event multicomputer simulator for SDDS
//! experiments.
//!
//! The LH\* papers evaluate on a physical multicomputer (autonomous servers
//! on a LAN). This crate substitutes a **deterministic, single-threaded
//! discrete-event simulation** of that multicomputer: nodes are [`Actor`]s
//! with private state, they communicate *only* by messages, message delivery
//! is delayed by a configurable [`LatencyModel`], and whole nodes can be
//! crashed and restarted. Two properties make this the right substrate for
//! reproducing the paper:
//!
//! 1. The SDDS literature's primary metric is the **number of messages** per
//!    operation, chosen exactly because it is network-speed invariant. The
//!    simulator counts every message by kind ([`NetStats`]), so the paper's
//!    tables are regenerated exactly rather than approximated.
//! 2. Events are totally ordered by `(time, sequence-number)`, so every
//!    experiment — including failure drills — is **reproducible bit for
//!    bit**, something the original testbed could not offer.
//!
//! # Example: ping-pong between two actors
//!
//! ```
//! use lhrs_sim::{Actor, Env, NodeId, Payload, Sim};
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping(u32), Pong(u32) }
//! impl Payload for Msg {
//!     fn kind(&self) -> &'static str {
//!         match self { Msg::Ping(_) => "ping", Msg::Pong(_) => "pong" }
//!     }
//! }
//!
//! struct Node { got: Option<u32> }
//! impl Actor<Msg> for Node {
//!     fn on_message(&mut self, env: &mut Env<'_, Msg>, from: NodeId, msg: Msg) {
//!         match msg {
//!             Msg::Ping(x) => env.send(from, Msg::Pong(x + 1)),
//!             Msg::Pong(x) => self.got = Some(x),
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(Default::default());
//! let a = sim.add_node(Node { got: None });
//! let b = sim.add_node(Node { got: None });
//! sim.send_as(a, b, Msg::Ping(41));
//! sim.run_until_idle();
//! assert_eq!(sim.actor(a).got, Some(42));
//! assert_eq!(sim.stats().count("ping"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod engine;
mod faults;
mod latency;
mod stats;

pub use actor::{Actor, Effect, Env, TimerId};
pub use engine::{NodeId, Sim, EXTERNAL};
pub use faults::{FaultPlan, Partition, PERMILLE};
pub use latency::LatencyModel;
pub use stats::{KindStats, NetStats};

/// Message payloads carried by the simulator.
///
/// `kind` labels the message for per-kind accounting ([`NetStats`]);
/// `size_bytes` feeds the latency model's per-byte term and the byte
/// tallies.
pub trait Payload: Clone + std::fmt::Debug {
    /// Accounting label, e.g. `"key-search"` or `"parity-delta"`.
    fn kind(&self) -> &'static str {
        "msg"
    }

    /// Approximate wire size; 0 is fine when only message counts matter.
    fn size_bytes(&self) -> usize {
        0
    }
}
