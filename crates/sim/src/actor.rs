//! The [`Actor`] trait and the [`Env`] handle actors use to talk to the
//! simulated network.

use crate::engine::NodeId;
use crate::Payload;

/// Identifier of a pending timer, returned by [`Env::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// A node of the simulated multicomputer.
///
/// Actors own private state and react to delivered messages and to their own
/// timers. All effects (sends, new timers) go through the [`Env`]; they are
/// buffered by the engine and applied after the handler returns, keeping the
/// simulation deterministic.
pub trait Actor<M: Payload> {
    /// Handle a message delivered from `from`.
    fn on_message(&mut self, env: &mut Env<'_, M>, from: NodeId, msg: M);

    /// Handle an expired timer set earlier via [`Env::set_timer`].
    fn on_timer(&mut self, env: &mut Env<'_, M>, timer: TimerId) {
        let _ = (env, timer);
    }
}

/// Buffered effect produced by an actor during one handler invocation.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send { to: NodeId, msg: M },
    Multicast { to: Vec<NodeId>, msg: M },
    SetTimer { id: TimerId, delay: u64 },
    CancelTimer { id: TimerId },
}

/// The interface through which an actor interacts with the simulated world:
/// sending messages, multicasting, and managing timers.
pub struct Env<'a, M: Payload> {
    pub(crate) me: NodeId,
    pub(crate) now: u64,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
}

impl<M: Payload> Env<'_, M> {
    /// The node this actor runs on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulated time (microseconds since simulation start).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Send a unicast message to `to` (counted once in [`crate::NetStats`]).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Send one multicast message to all `to` nodes. Tallied as a single
    /// multicast plus one delivery per recipient, matching how the LH\*
    /// papers cost scans on multicast-capable networks.
    pub fn multicast(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        let to: Vec<NodeId> = to.into_iter().collect();
        self.effects.push(Effect::Multicast { to, msg });
    }

    /// Arm a timer that fires on this node after `delay` simulated
    /// microseconds (unless cancelled or the node crashes).
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, delay });
        id
    }

    /// Cancel a previously armed timer. Cancelling an already-fired or
    /// foreign timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }
}
