//! The [`Actor`] trait and the [`Env`] handle actors use to talk to the
//! simulated network.

use lhrs_obs::{Event, Metrics};

use crate::engine::NodeId;
use crate::Payload;

/// Identifier of a pending timer, returned by [`Env::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// A node of the simulated multicomputer.
///
/// Actors own private state and react to delivered messages and to their own
/// timers. All effects (sends, new timers) go through the [`Env`]; they are
/// buffered by the engine and applied after the handler returns, keeping the
/// simulation deterministic.
pub trait Actor<M: Payload> {
    /// Handle a message delivered from `from`.
    fn on_message(&mut self, env: &mut Env<'_, M>, from: NodeId, msg: M);

    /// Handle an expired timer set earlier via [`Env::set_timer`].
    fn on_timer(&mut self, env: &mut Env<'_, M>, timer: TimerId) {
        let _ = (env, timer);
    }
}

/// Buffered effect produced by an actor during one handler invocation.
///
/// Effects are the complete vocabulary an actor can use against the outside
/// world, which is what makes actors host-agnostic: the [`crate::Sim`]
/// engine applies them to the discrete-event queue, while an external host
/// (e.g. a socket transport) can drain the same effects from an
/// [`Env::external`] environment and apply them to real connections and
/// wall-clock timers.
#[derive(Debug)]
pub enum Effect<M> {
    /// Unicast `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// One multicast of `msg` delivered to every node in `to`.
    Multicast {
        /// Destination nodes.
        to: Vec<NodeId>,
        /// The message.
        msg: M,
    },
    /// Arm timer `id` to fire on this node after `delay` microseconds.
    SetTimer {
        /// The timer handle returned to the actor.
        id: TimerId,
        /// Delay before firing, µs.
        delay: u64,
    },
    /// Cancel a previously armed timer (no-op if already fired).
    CancelTimer {
        /// The timer to cancel.
        id: TimerId,
    },
}

/// The interface through which an actor interacts with the simulated world:
/// sending messages, multicasting, and managing timers.
pub struct Env<'a, M: Payload> {
    pub(crate) me: NodeId,
    pub(crate) now: u64,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) obs: &'a Metrics,
}

impl<'a, M: Payload> Env<'a, M> {
    /// Build an environment for driving an actor **outside** the [`crate::Sim`]
    /// engine — the hook a real-network host runtime uses to run the very
    /// same actor code over sockets and wall-clock timers.
    ///
    /// `me` is the hosted node's identity, `now` the host's current time in
    /// microseconds, `next_timer` a host-owned counter allocating fresh
    /// [`TimerId`]s, and `effects` the buffer the handler's sends and timer
    /// operations are written into. After the handler returns, the host
    /// drains `effects` and applies each [`Effect`] to its own transport and
    /// timer wheel. The semantics an actor observes are identical to the
    /// simulator's: effects are buffered (never applied re-entrantly), timer
    /// ids are unique per host, and `now()` is stable for the whole handler
    /// invocation.
    ///
    /// `obs` is the host's observability handle; the environment records
    /// `msgs_sent` counters (and, when enabled, `MsgSent` trace events)
    /// into it exactly as the simulator does, so instrumentation emitted
    /// by actor code behaves identically under both runtimes. Pass a
    /// reference to [`Metrics::disabled`] to opt out.
    pub fn external(
        me: NodeId,
        now: u64,
        next_timer: &'a mut u64,
        effects: &'a mut Vec<Effect<M>>,
        obs: &'a Metrics,
    ) -> Self {
        Env {
            me,
            now,
            next_timer,
            effects,
            obs,
        }
    }

    /// The node this actor runs on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulated time (microseconds since simulation start).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The observability handle shared by every node of this runtime.
    /// Counters and trace events recorded through it are visible from the
    /// driver's [`Metrics`] clone (a disabled handle makes this a no-op).
    pub fn obs(&self) -> &Metrics {
        self.obs
    }

    /// Record a structured trace event stamped with this handler's `now()`
    /// — the single call actors use in both the simulator (logical µs) and
    /// the TCP runtime (wall µs since host start).
    pub fn trace(&self, event: Event) {
        self.obs.trace(self.now, event);
    }

    /// Send a unicast message to `to` (counted once in [`crate::NetStats`]
    /// and in the `msgs_sent{kind}` counter).
    pub fn send(&mut self, to: NodeId, msg: M) {
        let bytes = msg.size_bytes() as u64;
        self.obs.incr_kind("msgs_sent", msg.kind());
        self.obs.add("msgs_sent_bytes", bytes);
        if self.obs.msg_trace() {
            self.obs.trace(
                self.now,
                Event::MsgSent {
                    kind: msg.kind(),
                    from: self.me.0,
                    to: to.0,
                    bytes,
                },
            );
        }
        self.effects.push(Effect::Send { to, msg });
    }

    /// Send one multicast message to all `to` nodes. Tallied as a single
    /// multicast plus one delivery per recipient, matching how the LH\*
    /// papers cost scans on multicast-capable networks; the `msgs_sent`
    /// counter tallies one send per recipient.
    pub fn multicast(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        let to: Vec<NodeId> = to.into_iter().collect();
        self.obs.add_kind("msgs_sent", msg.kind(), to.len() as u64);
        self.obs
            .add("msgs_sent_bytes", (msg.size_bytes() * to.len()) as u64);
        self.effects.push(Effect::Multicast { to, msg });
    }

    /// Arm a timer that fires on this node after `delay` simulated
    /// microseconds (unless cancelled or the node crashes).
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, delay });
        id
    }

    /// Cancel a previously armed timer. Cancelling an already-fired or
    /// foreign timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }
}
