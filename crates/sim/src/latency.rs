//! Message-delay model.

/// A simple affine latency model: a message of `s` bytes is delivered after
/// `base + per_byte · s` simulated microseconds, plus optional deterministic
/// jitter.
///
/// The defaults approximate the 100 Mbit/s switched Ethernet of the paper's
/// testbed: ~180 µs per small message (the paper reports ~200 µs key-search
/// round trips), 0.08 µs/byte (≈ 100 Mbit/s payload rate).
///
/// Jitter is derived from a SplitMix64 hash of the engine's event sequence
/// number, so runs remain bit-for-bit reproducible.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed per-message cost in simulated microseconds.
    pub base_us: u64,
    /// Additional cost per payload byte, in *nanoseconds* per byte (kept in
    /// ns so slow-network models need no fractional µs).
    pub per_byte_ns: u64,
    /// Maximum deterministic jitter in microseconds (0 disables jitter).
    pub jitter_us: u64,
    /// CPU time a node spends handling one delivered message, in
    /// microseconds. Nodes process deliveries **serially**: a message
    /// arriving while the node is busy waits. This is what makes
    /// time-shaped results (recovery duration, load throughput) sensitive
    /// to fan-in, matching the paper's observation that CPU becomes the
    /// bottleneck on fast networks. 0 disables the model (infinitely fast
    /// servers).
    pub service_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_us: 180,
            per_byte_ns: 80,
            jitter_us: 20,
            service_us: 30,
        }
    }
}

impl LatencyModel {
    /// A zero-latency model: every message is delivered at the send time.
    /// Useful for pure message-count experiments.
    pub fn instant() -> Self {
        LatencyModel {
            base_us: 0,
            per_byte_ns: 0,
            jitter_us: 0,
            service_us: 0,
        }
    }

    /// A fixed-delay model without a bandwidth term.
    pub fn fixed(base_us: u64) -> Self {
        LatencyModel {
            base_us,
            per_byte_ns: 0,
            jitter_us: 0,
            service_us: 0,
        }
    }

    /// Delivery delay for a message of `bytes` payload, seeded by the
    /// engine's event sequence number for deterministic jitter.
    pub fn delay_us(&self, bytes: usize, seq: u64) -> u64 {
        let jitter = if self.jitter_us == 0 {
            0
        } else {
            splitmix64(seq) % (self.jitter_us + 1)
        };
        self.base_us + (self.per_byte_ns * bytes as u64) / 1000 + jitter
    }
}

/// SplitMix64: tiny, high-quality mixing function for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_model_has_zero_delay() {
        let m = LatencyModel::instant();
        assert_eq!(m.delay_us(10_000, 42), 0);
    }

    #[test]
    fn delay_grows_with_size() {
        let m = LatencyModel {
            base_us: 100,
            per_byte_ns: 1000,
            jitter_us: 0,
            service_us: 0,
        };
        assert_eq!(m.delay_us(0, 0), 100);
        assert_eq!(m.delay_us(500, 0), 600);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel {
            base_us: 10,
            per_byte_ns: 0,
            jitter_us: 5,
            service_us: 0,
        };
        for seq in 0..100 {
            let d1 = m.delay_us(0, seq);
            let d2 = m.delay_us(0, seq);
            assert_eq!(d1, d2, "same seq must give same delay");
            assert!((10..=15).contains(&d1));
        }
        // Jitter actually varies across sequence numbers.
        let distinct: std::collections::HashSet<u64> = (0..100).map(|s| m.delay_us(0, s)).collect();
        assert!(distinct.len() > 1);
    }
}
