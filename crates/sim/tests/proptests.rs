//! Property tests of the simulator's foundational guarantees: bit-for-bit
//! determinism and per-channel FIFO delivery — the two properties every
//! protocol result in this repository rests on. Seeded cases via
//! `lhrs-testkit`.

use lhrs_sim::{Actor, Env, LatencyModel, NodeId, Payload, Sim};
use lhrs_testkit::{cases, Rng};

#[derive(Clone, Debug, PartialEq)]
struct Tagged {
    src_hint: u32,
    seq: u32,
    fanout: Vec<u32>,
}

impl Payload for Tagged {
    fn kind(&self) -> &'static str {
        "tagged"
    }
    fn size_bytes(&self) -> usize {
        8 + self.fanout.len()
    }
}

#[derive(Default)]
struct Collector {
    seen: Vec<(NodeId, u32, u32)>,
}

impl Actor<Tagged> for Collector {
    fn on_message(&mut self, env: &mut Env<'_, Tagged>, from: NodeId, msg: Tagged) {
        self.seen.push((from, msg.src_hint, msg.seq));
        // Relay to the listed peers, preserving the tag.
        for &peer in &msg.fanout {
            env.send(
                NodeId(peer),
                Tagged {
                    src_hint: msg.src_hint,
                    seq: msg.seq,
                    fanout: Vec::new(),
                },
            );
        }
    }
}

fn model(choice: u8) -> LatencyModel {
    match choice % 4 {
        0 => LatencyModel::instant(),
        1 => LatencyModel::fixed(100),
        2 => LatencyModel::default(),
        _ => LatencyModel {
            base_us: 50,
            per_byte_ns: 500,
            jitter_us: 40,
            service_us: 10,
        },
    }
}

fn random_sends(rng: &mut Rng, lo: usize, hi: usize) -> Vec<(u8, u8, u8)> {
    (0..rng.range_usize(lo, hi))
        .map(|_| (rng.next_u8(), rng.next_u8(), rng.next_u8()))
        .collect()
}

fn run(
    nodes: usize,
    sends: &[(u8, u8, u8)],
    latency: LatencyModel,
) -> Vec<Vec<(NodeId, u32, u32)>> {
    let mut sim: Sim<Tagged, Collector> = Sim::new(latency);
    let ids: Vec<NodeId> = (0..nodes)
        .map(|_| sim.add_node(Collector::default()))
        .collect();
    for (i, &(to, fan1, fan2)) in sends.iter().enumerate() {
        let to = ids[to as usize % nodes];
        let fanout = vec![ids[fan1 as usize % nodes].0, ids[fan2 as usize % nodes].0];
        sim.send_external(
            to,
            Tagged {
                src_hint: to.0,
                seq: i as u32,
                fanout,
            },
        );
    }
    sim.run_until_idle();
    ids.iter().map(|id| sim.actor(*id).seen.clone()).collect()
}

/// Two identical runs produce identical per-node delivery logs under
/// every latency model, including jittered + service-time ones.
#[test]
fn runs_are_deterministic() {
    cases("runs_are_deterministic", 48, |rng| {
        let nodes = rng.range_usize(2, 8);
        let sends = random_sends(rng, 1, 60);
        let latency_choice = rng.below(4) as u8;
        let a = run(nodes, &sends, model(latency_choice));
        let b = run(nodes, &sends, model(latency_choice));
        assert_eq!(a, b);
    });
}

/// Per-channel FIFO: for any (src, dst) pair, messages arrive in send
/// order regardless of jitter (the external driver is one channel per
/// destination; relayed messages form node-to-node channels).
#[test]
fn channels_are_fifo() {
    cases("channels_are_fifo", 48, |rng| {
        let nodes = rng.range_usize(2, 6);
        let sends = random_sends(rng, 1, 80);
        let latency_choice = rng.below(4) as u8;
        let logs = run(nodes, &sends, model(latency_choice));
        for log in &logs {
            // Group by sender; each sender's seqs must arrive in increasing
            // order of *their send order*. The external channel sends seq
            // in increasing order; relays forward each received seq
            // immediately, so per relay-sender order must match the
            // relayer's own delivery order. We check the external channel
            // directly:
            let ext: Vec<u32> = log
                .iter()
                .filter(|(from, _, _)| *from == lhrs_sim::EXTERNAL)
                .map(|(_, _, seq)| *seq)
                .collect();
            let mut sorted = ext.clone();
            sorted.sort_unstable();
            assert_eq!(ext, sorted, "external channel reordered");
        }
        // Relay channels: node A relays in its delivery order; B must see
        // A's relays in that same order.
        for (a_idx, a_log) in logs.iter().enumerate() {
            let a_relay_order: Vec<u32> = a_log.iter().map(|(_, _, seq)| *seq).collect();
            for b_log in &logs {
                let from_a: Vec<u32> = b_log
                    .iter()
                    .filter(|(from, _, _)| *from == NodeId(a_idx as u32))
                    .map(|(_, _, seq)| *seq)
                    .collect();
                // from_a must be a subsequence of a_relay_order (possibly
                // with duplicates when A relayed the same seq twice to B).
                let mut it = a_relay_order.iter().peekable();
                let mut ok = true;
                'outer: for want in &from_a {
                    loop {
                        match it.peek() {
                            Some(&&have) if have == *want => {
                                // Do not consume: duplicates (two fanout
                                // entries to the same node) arrive
                                // back-to-back from one delivery.
                                break;
                            }
                            Some(_) => {
                                it.next();
                            }
                            None => {
                                ok = false;
                                break 'outer;
                            }
                        }
                    }
                }
                assert!(ok, "relay channel {a_idx}→? reordered");
            }
        }
    });
}
