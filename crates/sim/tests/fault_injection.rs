//! Integration tests of the fault-injection layer through the public API:
//! loss, duplication, reordering, partitions — and the bit-for-bit
//! determinism of all of them.

use lhrs_sim::{Actor, Env, FaultPlan, LatencyModel, NodeId, Partition, Payload, Sim};

#[derive(Clone, Debug, PartialEq)]
struct Num(u32);

impl Payload for Num {
    fn kind(&self) -> &'static str {
        "num"
    }
    fn size_bytes(&self) -> usize {
        4
    }
}

#[derive(Default)]
struct Recorder {
    seen: Vec<(NodeId, u32)>,
    forward_to: Option<NodeId>,
}

impl Actor<Num> for Recorder {
    fn on_message(&mut self, env: &mut Env<'_, Num>, from: NodeId, msg: Num) {
        self.seen.push((from, msg.0));
        if let Some(peer) = self.forward_to {
            env.send(peer, msg);
        }
    }
}

/// `count` messages relayed a→b under `plan`; returns b's delivery log.
fn relay_run(count: u32, plan: Option<FaultPlan>, latency: LatencyModel) -> Vec<u32> {
    let mut sim: Sim<Num, Recorder> = Sim::new(latency);
    let a = sim.add_node(Recorder::default());
    let b = sim.add_node(Recorder::default());
    sim.actor_mut(a).forward_to = Some(b);
    if let Some(p) = plan {
        sim.set_fault_plan(p);
    }
    for i in 0..count {
        sim.send_external(a, Num(i));
    }
    sim.run_until_idle();
    sim.actor(b).seen.iter().map(|(_, v)| *v).collect()
}

#[test]
fn loss_drops_messages_and_is_tallied() {
    let mut sim: Sim<Num, Recorder> = Sim::new(LatencyModel::instant());
    let a = sim.add_node(Recorder::default());
    let b = sim.add_node(Recorder::default());
    sim.actor_mut(a).forward_to = Some(b);
    sim.set_fault_plan(FaultPlan::new(11).drop_permille(500)); // 50%
    for i in 0..400 {
        sim.send_external(a, Num(i));
    }
    sim.run_until_idle();
    let delivered = sim.actor(b).seen.len() as u64;
    let lost = sim.stats().fault_dropped;
    assert_eq!(delivered + lost, 400);
    assert!((100..300).contains(&lost), "≈50% of 400 lost, got {lost}");
    // External injections into `a` were exempt: a saw everything.
    assert_eq!(sim.actor(a).seen.len(), 400);
}

#[test]
fn duplication_delivers_extra_copies() {
    let got = relay_run(
        200,
        Some(FaultPlan::new(5).dup_permille(1000)), // duplicate everything
        LatencyModel::instant(),
    );
    assert_eq!(got.len(), 400, "every relayed message arrives twice");
    for i in 0..200 {
        assert_eq!(got.iter().filter(|&&v| v == i).count(), 2);
    }
}

#[test]
fn reordering_breaks_fifo_but_loses_nothing() {
    let plan = FaultPlan::new(3)
        .reorder_permille(300)
        .reorder_window_us(2_000);
    let got = relay_run(300, Some(plan), LatencyModel::fixed(100));
    assert_eq!(got.len(), 300, "reordering must not lose messages");
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_ne!(got, sorted, "with 30% reorder some message must overtake");
    assert_eq!(sorted, (0..300).collect::<Vec<u32>>());
}

#[test]
fn runs_with_faults_are_bit_identical() {
    let plan = || {
        FaultPlan::new(77)
            .drop_permille(50)
            .dup_permille(50)
            .reorder_permille(100)
            .reorder_window_us(700)
    };
    let a = relay_run(500, Some(plan()), LatencyModel::default());
    let b = relay_run(500, Some(plan()), LatencyModel::default());
    assert_eq!(a, b);
    // A different seed gives a different schedule.
    let c = relay_run(
        500,
        Some(plan().drop_permille(50).dup_permille(50)), // same rates...
        LatencyModel::default(),
    );
    assert_eq!(a, c, "same seed, same rates: identical");
    let d = relay_run(
        500,
        Some(
            FaultPlan::new(78)
                .drop_permille(50)
                .dup_permille(50)
                .reorder_permille(100)
                .reorder_window_us(700),
        ),
        LatencyModel::default(),
    );
    assert_ne!(a, d, "different seed: different fault schedule");
}

#[test]
fn partition_window_blocks_then_heals() {
    let mut sim: Sim<Num, Recorder> = Sim::new(LatencyModel::fixed(10));
    let a = sim.add_node(Recorder::default());
    let b = sim.add_node(Recorder::default());
    sim.actor_mut(a).forward_to = Some(b);
    // b is cut off between t=0 and t=1000 µs.
    sim.set_fault_plan(FaultPlan::new(0).partition(Partition::new(vec![b], 0, 1000)));
    sim.send_external(a, Num(1)); // relayed at t=10, inside the window
    sim.run_until(5_000);
    assert!(sim.actor(b).seen.is_empty());
    assert_eq!(sim.stats().partition_dropped, 1);
    // After the window closes the channel works again.
    sim.send_external(a, Num(2));
    sim.run_until_idle();
    assert_eq!(sim.actor(b).seen, vec![(a, 2)]);
}

#[test]
fn clearing_the_plan_restores_reliability() {
    let mut sim: Sim<Num, Recorder> = Sim::new(LatencyModel::instant());
    let a = sim.add_node(Recorder::default());
    let b = sim.add_node(Recorder::default());
    sim.actor_mut(a).forward_to = Some(b);
    sim.set_fault_plan(FaultPlan::new(1).drop_permille(1000));
    sim.send_external(a, Num(1));
    sim.run_until_idle();
    assert!(sim.actor(b).seen.is_empty());
    assert!(sim.fault_plan().is_some());
    sim.clear_fault_plan();
    sim.send_external(a, Num(2));
    sim.run_until_idle();
    assert_eq!(sim.actor(b).seen, vec![(a, 2)]);
}
