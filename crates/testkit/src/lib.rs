//! Deterministic pseudo-randomness for tests, benches, and examples.
//!
//! The workspace builds in hermetic environments with no access to a crates
//! registry, so everything that previously leaned on `rand`/`proptest` uses
//! this tiny crate instead: a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator (the same mixer the simulator's latency jitter uses) plus a
//! seeded-case harness, [`cases`], that replaces `proptest!` loops with
//! reproducible iteration — every failure reports the exact seed that
//! triggers it, so a failing case can be replayed as a one-line unit test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The SplitMix64 finalizer: a bijective 64-bit mixer with good avalanche.
///
/// This is deliberately the same function `lhrs_sim::LatencyModel` uses for
/// jitter, so test inputs and simulated network noise draw from the same
/// well-studied family.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic pseudo-random generator (SplitMix64 stream).
///
/// Not cryptographic; statistically solid for test-case generation and
/// workload synthesis, and — crucially — identical on every platform and
/// every run.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Next 32 uniform bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16 uniform bits.
    #[inline]
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Next 8 uniform bits.
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform value in `[0, n)` (Lemire multiply-shift; `n = 0` panics).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`; panics on an empty range.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)` — the common test-size helper.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `num / den`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fill `out` with uniform bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, v: &'a [T]) -> Option<&'a T> {
        if v.is_empty() {
            None
        } else {
            Some(&v[self.below(v.len() as u64) as usize])
        }
    }
}

/// FNV-1a hash of a test name, used to decorrelate the seed streams of
/// different properties that share a case index.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `n` seeded cases of a property.
///
/// Each case gets an [`Rng`] seeded from `(name, case index)`; a panic inside
/// the body is re-raised annotated with the failing case's seed, so the
/// exact input can be reproduced with `Rng::new(seed)` in isolation.
pub fn cases<F: Fn(&mut Rng)>(name: &str, n: u64, f: F) {
    let base = name_hash(name);
    for i in 0..n {
        let seed = splitmix64(base ^ i);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property `{name}` failed at case {i} (seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range_and_hits_everything() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "10 buckets in 1000 draws");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(11);
        for _ in 0..500 {
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn cases_reports_seed_on_failure() {
        let err = std::panic::catch_unwind(|| {
            cases("always_fails", 1, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn cases_passes_quietly() {
        cases("trivial", 8, |rng| {
            let x = rng.next_u64();
            let y = x;
            assert_eq!(y, x);
        });
    }
}
